// The NetLock control plane (paper Sections 4.3, 4.5).
//
// Runs on the switch CPU / management plane: installs memory allocations,
// partitions locks across lock servers, migrates locks between switch and
// servers as popularity changes (pause -> drain -> move), polls leases to
// clear expired transactions, and tracks per-lock demand counters (r_i,
// c_i) for reallocation.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/memory_alloc.h"
#include "dataplane/switch_dataplane.h"
#include "server/lock_server.h"
#include "sim/simulator.h"

namespace netlock {

struct ControlPlaneConfig {
  /// Lease duration for transaction-failure / deadlock recovery.
  SimTime lease = 50 * kMillisecond;
  /// How often the control plane polls the data plane for expired leases.
  SimTime lease_poll_interval = 10 * kMillisecond;
  /// Drain-poll interval during lock migration.
  SimTime drain_poll_interval = 100 * kMicrosecond;
};

class ControlPlane {
 public:
  ControlPlane(Simulator& sim, LockSwitch& lock_switch,
               std::vector<LockServer*> servers,
               ControlPlaneConfig config = ControlPlaneConfig{});

  /// Home server for a lock: static hash partitioning, as with the
  /// directory service the paper's clients consult.
  NodeId ServerFor(LockId lock) const;
  LockServer& ServerObjFor(LockId lock) const;

  /// Installs an allocation computed by KnapsackAllocate/RandomAllocate:
  /// switch-resident locks get their regions; every lock (resident or not)
  /// gets a home-server route. Locks whose region cannot be placed (switch
  /// full) fall back to server-only.
  void InstallAllocation(const Allocation& allocation);

  /// Registers a server-only lock (route only).
  void RegisterServerLock(LockId lock);

  /// Starts periodic lease polling (ClearExpired on switch and servers).
  void StartLeasePolling();

  /// Chain-replication awareness for the lease sweeps: in kChained mode,
  /// forced releases run on the head (they replicate down the chain) and
  /// the overflow re-arm on the tail (the emitting replica); after tail
  /// promotion the tail gets the full sweep.
  enum class ChainMode { kNone, kChained, kTailPromoted };
  void SetChain(ChainMode mode, LockSwitch* tail);

  // --- Dynamic popularity tracking and reallocation (Section 4.3) ---

  /// Feeds one observed request (rate counter) and a concurrent-demand
  /// sample (contention counter) for a lock.
  void RecordRequest(LockId lock, std::uint32_t concurrent);

  /// Current measured demands (rates normalized over the window since the
  /// last Reallocate call).
  std::vector<LockDemand> MeasuredDemands() const;

  /// Harvests the data-plane demand counters (switch + every server) into
  /// one demand vector, normalized over the window since the last harvest,
  /// and resets them. This is the paper's counter-driven input to
  /// Algorithm 3.
  std::vector<LockDemand> HarvestDemands();

  /// One deduplicated demand vector over the window: the data-plane
  /// counters merged with the software RecordRequest counters by taking the
  /// per-lock max (a hot lock is typically seen by both paths; summing
  /// would double-count it and skew the knapsack toward instrumented
  /// locks). Consumes the window: both counter sets reset.
  std::vector<LockDemand> CombinedDemands();

  /// Recomputes the allocation from CombinedDemands() and migrates locks
  /// accordingly. `done` fires when all migrations complete. Returns false
  /// (demand window untouched, `done` dropped) if a previous migration
  /// batch is still draining — overlapping batches would double-pause
  /// locks and race each other's sequencing.
  bool Reallocate(std::uint32_t switch_capacity, std::function<void()> done);

  /// Migrates from the installed allocation to `target`: removals drain
  /// first, then additions/resizes install. Each `installed_` entry commits
  /// only when its migration lands, so RecoverSwitch() mid-batch reinstalls
  /// exactly what the switch actually owned. Returns false (and drops
  /// `done`) if a batch is already in flight.
  bool ApplyAllocation(const Allocation& target, std::function<void()> done);

  /// True while a Reallocate/ApplyAllocation migration batch is draining.
  bool MigrationInFlight() const { return migration_in_flight_; }

  /// Migrates one lock out of the switch to its home server.
  void MoveLockToServer(LockId lock, std::function<void()> done);

  /// Migrates one server lock into the switch with `slots` queue slots.
  /// `done(installed)` reports whether the lock actually landed on the
  /// switch (false: fragmentation fallback kept it server-owned).
  void MoveLockToSwitch(LockId lock, std::uint32_t slots,
                        std::function<void(bool installed)> done);

  /// Re-runs failure recovery after a switch restart: reinstalls the last
  /// allocation (Section 4.5 switch-failure handling; queued state is
  /// recovered via leases and client retries).
  void RecoverSwitch();

  // --- Lock-server failure (Section 4.5: "the locks allocated to this
  // server is assigned to another lock server ... the server waits for the
  // leases to expire before granting the locks") ---

  /// Fails lock server `index`: its locks re-hash onto the surviving
  /// servers, which take them under a one-lease grace period; installed
  /// switch locks homed there get their q2 reassigned.
  void FailServer(int index);

  /// Restarts lock server `index` and re-homes its locks: substitutes drop
  /// the transferred state (clients re-submit, §4.5) and the recovered
  /// server serves them after a one-lease grace.
  void RecoverServer(int index);

  bool ServerAlive(int index) const;

  const ControlPlaneConfig& config() const { return config_; }

  /// The allocation currently installed (for failover replication).
  const Allocation& installed() const { return installed_; }

  /// The lock servers this control plane manages.
  const std::vector<LockServer*>& servers() const { return servers_; }

 private:
  struct DemandCounters {
    std::uint64_t requests = 0;
    std::uint32_t max_concurrent = 1;
  };

  void PollLeases();

  void ReassignInstalledHomes();

  /// Per-lock `installed_` bookkeeping: entries commit as migrations land,
  /// never ahead of them (split-brain guard for RecoverSwitch).
  void CommitSwitchInstall(LockId lock, std::uint32_t slots);
  void CommitSwitchRemoval(LockId lock);

  Simulator& sim_;
  LockSwitch& switch_;
  std::vector<LockServer*> servers_;
  std::vector<bool> alive_;
  ChainMode chain_mode_ = ChainMode::kNone;
  LockSwitch* chain_tail_ = nullptr;
  ControlPlaneConfig config_;
  Allocation installed_;
  std::unordered_map<LockId, DemandCounters> counters_;
  SimTime window_start_ = 0;
  bool lease_polling_ = false;
  bool migration_in_flight_ = false;
};

}  // namespace netlock
