// Multi-rack scale-out: shard the lock space across NetLock racks.
//
// The paper sizes NetLock per rack (Sections 4.3, 6): one ToR switch plus a
// handful of lock servers serve that rack's database nodes. Scaling past a
// single rack follows the NetChain (NSDI'18) recipe for in-switch state —
// partition the key space across switches with consistent, client-side
// routing:
//
//   * LockDirectory maps LockId -> rack by hash, with an exact-match
//     override table so individual hot locks can be re-homed onto an
//     underloaded rack without moving their whole hash range.
//   * ShardedNetLock owns N NetLockManager racks over one simulated
//     network and creates sessions that route each acquire to its lock's
//     rack. Releases follow the rack that granted (recorded per
//     (lock, txn) at acquire time), so a re-home never strands a release
//     on the wrong switch.
//   * RehomeLock migrates one lock between racks with the same
//     pause -> drain -> move discipline the control plane uses inside a
//     rack (ControlPlane::MoveLockToServer / MoveLockToSwitch): install
//     suspended at the target, flip the directory (new requests queue at
//     the target but are not granted), drain the source, tombstone-route
//     strays from the source to the target, then activate. Mutual
//     exclusion holds throughout: at most one rack grants the lock at any
//     time.
//
// Per-rack observability: when `label_racks` is set (and there is more
// than one rack) each rack's switch/server instruments resolve under a
// "rackN." metrics prefix and its trace spans carry pid = N + 1, so the
// existing dashboards split by rack.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "client/client.h"
#include "core/netlock.h"

namespace netlock {

/// Client-side map LockId -> rack: hash partitioning plus an exact-match
/// override table for re-homed locks. Pure and deterministic; every client
/// and the control planes share one instance per topology.
class LockDirectory {
 public:
  explicit LockDirectory(int num_racks);

  int num_racks() const { return num_racks_; }

  /// Rack responsible for `lock`: the override if one is set, else the
  /// hash partition.
  int RackFor(LockId lock) const {
    const auto it = overrides_.find(lock);
    if (it != overrides_.end()) return it->second;
    return HashRack(lock, num_racks_);
  }

  /// Exact-match override: `lock` now lives on `rack`.
  void SetOverride(LockId lock, int rack);
  void ClearOverride(LockId lock);
  bool HasOverride(LockId lock) const {
    return overrides_.find(lock) != overrides_.end();
  }
  std::size_t num_overrides() const { return overrides_.size(); }

  /// The hash partition (ignoring overrides). Deterministic across
  /// processes and runs.
  static int HashRack(LockId lock, int num_racks);

 private:
  int num_racks_;
  std::unordered_map<LockId, int> overrides_;
};

struct ShardedNetLockOptions {
  /// Per-rack configuration (every rack is built identically).
  NetLockOptions rack;
  int num_racks = 1;
  /// Label each rack's metrics ("rackN." prefix) and trace spans
  /// (pid = N + 1) when there is more than one rack. Single-rack
  /// topologies always keep the unprefixed names.
  bool label_racks = true;
  /// Poll interval for the re-home drain (mirrors the control plane's
  /// drain_poll_interval).
  SimTime rehome_poll_interval = 100 * kMicrosecond;
};

/// A client session over a sharded topology: one inner per-rack session,
/// acquire routed by the directory at call time, release routed to the
/// rack that granted.
class ShardedSession : public LockSession {
 public:
  ShardedSession(const LockDirectory& directory,
                 std::vector<std::unique_ptr<LockSession>> rack_sessions);

  void Acquire(LockId lock, LockMode mode, TxnId txn, Priority priority,
               AcquireCallback cb) override;
  void Release(LockId lock, LockMode mode, TxnId txn) override;
  NodeId node() const override { return rack_sessions_[0]->node(); }

  /// The per-rack inner session (for harness wiring: each has its own
  /// network node that needs a latency to its rack's switch).
  LockSession& rack_session(int rack) { return *rack_sessions_[rack]; }
  int num_racks() const { return static_cast<int>(rack_sessions_.size()); }

 private:
  struct RouteKey {
    LockId lock;
    TxnId txn;
    bool operator==(const RouteKey&) const = default;
  };
  struct RouteKeyHash {
    std::size_t operator()(const RouteKey& key) const {
      std::uint64_t h = key.txn * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<std::uint64_t>(key.lock) + 0x165667b19e3779f9ull) +
           (h << 6) + (h >> 2);
      h ^= h >> 31;
      return static_cast<std::size_t>(h);
    }
  };

  const LockDirectory& directory_;
  std::vector<std::unique_ptr<LockSession>> rack_sessions_;
  /// (lock, txn) -> rack that serviced the acquire. An entry lives from
  /// Acquire until Release (or until a failed acquire's callback), so a
  /// directory flip mid-transaction cannot misroute the release.
  std::unordered_map<RouteKey, int, RouteKeyHash> acquire_rack_;
};

/// N NetLock racks behind one lock-space directory.
class ShardedNetLock {
 public:
  ShardedNetLock(Network& net,
                 ShardedNetLockOptions options = ShardedNetLockOptions{});

  int num_racks() const { return static_cast<int>(racks_.size()); }
  NetLockManager& rack(int r) { return *racks_[r]; }
  LockDirectory& directory() { return directory_; }
  const LockDirectory& directory() const { return directory_; }

  /// Splits a global allocation by directory and installs each rack's
  /// share (starts lease polling everywhere).
  void InstallAllocation(const Allocation& allocation);

  /// Splits `demands` by directory and runs the knapsack per rack against
  /// that rack's switch queue capacity.
  void InstallKnapsack(const std::vector<LockDemand>& demands);

  /// Creates a session. Single-rack topologies return the plain
  /// NetLockSession (zero routing overhead and full API compatibility);
  /// multi-rack topologies return a ShardedSession.
  std::unique_ptr<LockSession> CreateSession(ClientMachine& machine,
                                             TenantId tenant = 0);

  /// Re-homes one lock onto `to_rack` using the pause -> drain -> move
  /// protocol described in the header comment. `done` fires when the lock
  /// is live on the target rack. A no-op (done fires immediately, returns
  /// false) when the lock already lives there or a re-home for it is
  /// already in flight — the false return lets the self-driving controller
  /// charge its migration budget only for moves that actually launch.
  bool RehomeLock(LockId lock, int to_rack,
                  std::function<void()> done = nullptr);

  bool RehomeInFlight(LockId lock) const {
    return rehoming_.find(lock) != rehoming_.end();
  }
  std::size_t rehomes_in_flight() const { return rehoming_.size(); }
  std::uint64_t rehomes_completed() const { return rehomes_completed_; }

  // --- Aggregate and per-rack grant accounting (scale-out benches) ---
  std::uint64_t SwitchGrants() const;
  std::uint64_t ServerGrants() const;
  std::uint64_t SwitchGrants(int rack) const {
    return racks_[rack]->SwitchGrants();
  }
  std::uint64_t ServerGrants(int rack) const {
    return racks_[rack]->ServerGrants();
  }

 private:
  Network& net_;
  ShardedNetLockOptions options_;
  LockDirectory directory_;
  std::vector<std::unique_ptr<NetLockManager>> racks_;
  std::unordered_set<LockId> rehoming_;
  std::uint64_t rehomes_completed_ = 0;
};

}  // namespace netlock
