// Switch-server memory allocation (paper Section 4.3, Algorithm 3).
//
// Given per-lock demand — request rate r_i and maximum contention c_i —
// decide which locks get switch queue slots and how many. The objective is
// the request rate the switch can guarantee to absorb:
//
//     maximize  sum_i r_i * s_i / c_i
//     s.t.      sum_i s_i <= S,   s_i <= c_i
//
// a fractional-knapsack instance: allocating one slot to lock i is worth
// r_i / c_i, so Algorithm 3 sorts by that density and fills greedily, which
// is optimal (Theorem 1; property-tested against brute force in
// tests/memory_alloc_test.cc). The random strawman of Figure 13 is included
// as the ablation baseline.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace netlock {

/// The allocation decision: slots per switch-resident lock; everything else
/// is served by lock servers alone.
struct Allocation {
  std::vector<std::pair<LockId, std::uint32_t>> switch_slots;
  std::vector<LockId> server_only;
  /// Objective value: request rate the switch guarantees to process.
  double guaranteed_rate = 0.0;

  bool InSwitch(LockId lock) const;
};

/// Algorithm 3: optimal greedy allocation.
Allocation KnapsackAllocate(std::vector<LockDemand> demands,
                            std::uint32_t switch_capacity);

/// Figure 13's strawman: random lock order, c_i slots each until full.
Allocation RandomAllocate(std::vector<LockDemand> demands,
                          std::uint32_t switch_capacity, std::uint64_t seed);

/// The design the shared queue replaces (paper §4.2): statically bind one
/// fixed-size register array of `fixed_slots` to each lock. Locks are
/// admitted by rate until capacity runs out; a lock with contention above
/// `fixed_slots` overflows (its excess is served by the servers), and one
/// with contention below it wastes the difference. Used by the
/// shared-queue ablation bench.
Allocation StaticAllocate(std::vector<LockDemand> demands,
                          std::uint32_t switch_capacity,
                          std::uint32_t fixed_slots);

/// Exhaustive optimum over integer slot vectors; exponential — tests only.
double BruteForceObjective(const std::vector<LockDemand>& demands,
                           std::uint32_t switch_capacity);

/// Objective value of an arbitrary allocation under the given demands.
double AllocationObjective(const std::vector<LockDemand>& demands,
                           const Allocation& allocation);

/// Performance guarantee (Section 4.3): lock servers needed to absorb the
/// request rate the switch cannot guarantee, at `server_rate` each.
std::uint32_t ServersNeeded(const std::vector<LockDemand>& demands,
                            const Allocation& allocation, double server_rate);

}  // namespace netlock
