// Switch-server memory allocation (paper Section 4.3, Algorithm 3).
//
// Given per-lock demand — request rate r_i and maximum contention c_i —
// decide which locks get switch queue slots and how many. The objective is
// the request rate the switch can guarantee to absorb:
//
//     maximize  sum_i r_i * s_i / c_i
//     s.t.      sum_i s_i <= S,   s_i <= c_i
//
// a fractional-knapsack instance: allocating one slot to lock i is worth
// r_i / c_i, so Algorithm 3 sorts by that density and fills greedily, which
// is optimal (Theorem 1; property-tested against brute force in
// tests/memory_alloc_test.cc). The random strawman of Figure 13 is included
// as the ablation baseline.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace netlock {

/// The allocation decision: slots per switch-resident lock; everything else
/// is served by lock servers alone.
struct Allocation {
  std::vector<std::pair<LockId, std::uint32_t>> switch_slots;
  std::vector<LockId> server_only;
  /// Objective value: request rate the switch guarantees to process.
  double guaranteed_rate = 0.0;

  bool InSwitch(LockId lock) const;
};

/// Algorithm 3: optimal greedy allocation.
Allocation KnapsackAllocate(std::vector<LockDemand> demands,
                            std::uint32_t switch_capacity);

/// Hysteresis policy for IncrementalKnapsack.
struct IncrementalPolicy {
  /// Density multiplier applied to already-installed locks during the
  /// re-solve. A challenger displaces an incumbent only when its density
  /// exceeds `incumbent_boost` times the incumbent's (equivalently, an
  /// incumbent is evicted only when its density falls below
  /// challenger / incumbent_boost) — the admission and eviction thresholds
  /// are the two faces of this one knob. 1.0 = no hysteresis: the result
  /// matches KnapsackAllocate over the same demand set.
  double incumbent_boost = 1.25;
  /// Keep an admitted incumbent's installed slot count when the re-solved
  /// want differs from it by less than this (suppresses resize churn from
  /// integer contention flutter). 0 = always resize to the exact want.
  std::uint32_t min_resize_delta = 0;
};

/// Incremental re-solve seeded from the previous allocation (the POP
/// trace-tree idiom: recompute only the slice whose demand moved, not the
/// world). `demands` is the dirty slice — the locks whose measured demand
/// changed this interval plus any incumbents the caller wants re-examined.
/// Seed locks absent from `demands` keep their slots verbatim; the dirty
/// slice is re-packed greedily into the remaining capacity with the
/// incumbency hysteresis above. Work is O(|slice| log |slice|), independent
/// of the total lock-space size.
Allocation IncrementalKnapsack(const Allocation& seed,
                               const std::vector<LockDemand>& demands,
                               std::uint32_t switch_capacity,
                               const IncrementalPolicy& policy = {});

/// Figure 13's strawman: random lock order, c_i slots each until full.
Allocation RandomAllocate(std::vector<LockDemand> demands,
                          std::uint32_t switch_capacity, std::uint64_t seed);

/// The design the shared queue replaces (paper §4.2): statically bind one
/// fixed-size register array of `fixed_slots` to each lock. Locks are
/// admitted by rate until capacity runs out; a lock with contention above
/// `fixed_slots` overflows (its excess is served by the servers), and one
/// with contention below it wastes the difference. Used by the
/// shared-queue ablation bench.
Allocation StaticAllocate(std::vector<LockDemand> demands,
                          std::uint32_t switch_capacity,
                          std::uint32_t fixed_slots);

/// Exhaustive optimum over integer slot vectors; exponential — tests only.
double BruteForceObjective(const std::vector<LockDemand>& demands,
                           std::uint32_t switch_capacity);

/// Objective value of an arbitrary allocation under the given demands.
double AllocationObjective(const std::vector<LockDemand>& demands,
                           const Allocation& allocation);

/// Performance guarantee (Section 4.3): lock servers needed to absorb the
/// request rate the switch cannot guarantee, at `server_rate` each.
std::uint32_t ServersNeeded(const std::vector<LockDemand>& demands,
                            const Allocation& allocation, double server_rate);

}  // namespace netlock
