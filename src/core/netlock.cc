#include "core/netlock.h"

#include "common/check.h"

namespace netlock {

NetLockManager::NetLockManager(Network& net, NetLockOptions options)
    : net_(net), options_(options) {
  NETLOCK_CHECK(options_.num_servers >= 1);
  switch_ = std::make_unique<LockSwitch>(net_, options_.switch_config);
  std::vector<LockServer*> server_ptrs;
  for (int i = 0; i < options_.num_servers; ++i) {
    servers_.push_back(
        std::make_unique<LockServer>(net_, options_.server_config));
    server_ptrs.push_back(servers_.back().get());
  }
  control_ = std::make_unique<ControlPlane>(net_.sim(), *switch_,
                                            std::move(server_ptrs),
                                            options_.control_config);
}

void NetLockManager::InstallAllocation(const Allocation& allocation) {
  control_->InstallAllocation(allocation);
  control_->StartLeasePolling();
}

void NetLockManager::InstallKnapsack(const std::vector<LockDemand>& demands) {
  InstallAllocation(
      KnapsackAllocate(demands, options_.switch_config.queue_capacity));
}

std::unique_ptr<LockSession> NetLockManager::CreateSession(
    ClientMachine& machine, TenantId tenant) {
  NetLockSession::Config config;
  config.switch_node = switch_->node();
  config.tenant = tenant;
  config.retry_timeout = options_.client_retry_timeout;
  config.max_retries = options_.client_max_retries;
  config.lease = options_.client_lease;
  config.lease_release_margin = options_.client_lease_release_margin;
  return std::make_unique<NetLockSession>(machine, config);
}

std::uint64_t NetLockManager::ServerGrants() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) total += server->stats().grants;
  return total;
}

}  // namespace netlock
