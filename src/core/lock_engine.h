// Substrate-neutral lock wait-queue engine.
//
// The software lock-queue protocol — FIFO queue per lock, Algorithm 2's
// grant cascade on release, pause/grace buffering for migration and
// failover, lease-forced release, and the r_i/c_i demand counters — used to
// live inside LockServer, welded to the simulated Network. It is extracted
// here so the exact same compiled code runs on both execution substrates:
//
//   * the simulator: LockServer wraps a LockEngine, feeding it packets
//     after the simulated per-core service time and emitting grants as
//     simulated packets;
//   * the real-time backend: RtLockService shards one LockEngine per
//     worker core (RSS lock->core hashing keeps each lock single-threaded)
//     and emits grants into SPSC completion rings.
//
// The engine itself is single-threaded and knows nothing about time
// sources: callers pass `now` (simulated or wall-clock nanoseconds) into
// every operation, and grant decisions come out through a GrantSink.
//
// Storage is a flat open-addressing table (linear probing, tombstone
// deletion) of per-lock states, with slab-backed FIFO wait queues: a
// queue's first kInlineSlots entries live inline in the state (the common
// case — depth <= 4 — touches no other memory and allocates nothing), and
// deeper queues spill into fixed-size chunks drawn from a free-list slab
// owned by the engine, so steady-state acquire/release performs zero heap
// allocations at any depth once the slab is warm. The previous
// unordered_map<LockId, deque> representation paid a node allocation per
// lock plus deque pointer-chasing on every operation.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "dataplane/slot.h"

namespace netlock {

/// Why the engine refused or revoked an entry (deadlock policies only).
enum class AbortReason : std::uint8_t {
  kNoWait = 0,   ///< kNoWait: conflicting acquire refused, never queued.
  kWaitDie = 1,  ///< kWaitDie: requester younger than a conflicting entry.
  kWound = 2,    ///< kWoundWait: queued (possibly granted) entry revoked by
                 ///< an older conflicting requester.
};

inline const char* ToString(AbortReason r) {
  switch (r) {
    case AbortReason::kNoWait:
      return "no_wait";
    case AbortReason::kWaitDie:
      return "wait_die";
    case AbortReason::kWound:
      return "wound";
  }
  return "?";
}

/// Receives the engine's grant decisions. Implementations deliver the grant
/// to `slot.client_node` by whatever transport the substrate uses.
class GrantSink {
 public:
  virtual ~GrantSink() = default;

  /// `slot` became a holder of `lock`. slot.timestamp is the grant time.
  virtual void DeliverGrant(LockId lock, const QueueSlot& slot) = 0;

  /// A queued entry is about to be granted after waiting; called with the
  /// slot still carrying its enqueue timestamp (the sim wires wait-span
  /// tracing here). Entries granted immediately on acquire do not wait and
  /// do not produce this call.
  virtual void OnWaitEnd(LockId /*lock*/, const QueueSlot& /*slot*/,
                         SimTime /*now*/) {}

  /// A deadlock policy refused `slot` (kNoWait / kWaitDie: the entry was
  /// never queued) or revoked it (kWound: the entry was removed from the
  /// queue, possibly while granted). Fired BEFORE any cascade grants the
  /// removal enables, so an observer always learns of the abort no later
  /// than its consequences. Default no-op: policy-free substrates and
  /// existing sinks are unaffected.
  virtual void DeliverAbort(LockId /*lock*/, const QueueSlot& /*slot*/,
                            AbortReason /*reason*/) {}
};

/// What a release did. The caller maps outcomes onto its stats/metrics.
enum class ReleaseOutcome : std::uint8_t {
  kApplied = 0,     ///< Head popped; cascade grants (if any) delivered.
  kStale = 1,       ///< Unknown lock or empty queue; dropped.
  kMismatched = 2,  ///< Mode/txn does not match the head (already swept).
};

class LockEngine {
 public:
  explicit LockEngine(GrantSink& sink) : sink_(sink) {}

  LockEngine(const LockEngine&) = delete;
  LockEngine& operator=(const LockEngine&) = delete;

  /// Selects the deadlock-handling policy applied by Acquire. kNone (the
  /// default) preserves the classic queue-everything behaviour exactly.
  void set_deadlock_policy(DeadlockPolicy policy) { policy_ = policy; }
  DeadlockPolicy deadlock_policy() const { return policy_; }

  // --- Request path ---

  /// Appends an entry (stamping slot.timestamp = now) and grants it when
  /// the queue head rules allow: first entry, or a shared request joining
  /// an all-shared queue. Paused locks buffer instead.
  ///
  /// With a deadlock policy set, a conflicting request (different txn, at
  /// least one side exclusive) may instead be refused via DeliverAbort
  /// (kNoWait: any conflict; kWaitDie: a conflicting queued entry is
  /// older), or — under kWoundWait — first remove every *younger*
  /// conflicting queued entry (each revoked via DeliverAbort) before
  /// queuing normally. Because a retry uses a fresh (larger) txn id, every
  /// waits-for edge points from younger to older (wound-wait) or from
  /// older to younger (wait-die), so cycles cannot form.
  void Acquire(LockId lock, QueueSlot slot, SimTime now);

  /// What RemoveTxn removed.
  struct RemoveResult {
    std::uint32_t removed = 0;          ///< Entries removed (all queues).
    std::uint32_t removed_granted = 0;  ///< Of those, already granted.
  };

  /// Removes every entry of `txn` on `lock` — waiting, granted, or parked
  /// in the paused buffer — and re-grants whatever the removals promote to
  /// the front (clients served by a wire transport send this as kCancel
  /// when a wound/die aborts a txn with an acquire still in flight, so a
  /// doomed entry never stalls the queue for a full lease). `notify` aborts
  /// each removed entry through DeliverAbort(reason) before any re-grant.
  RemoveResult RemoveTxn(LockId lock, TxnId txn, SimTime now, bool notify,
                         AbortReason reason = AbortReason::kWound);

  /// Validated dequeue with the switch-equivalent grant cascade: a release
  /// whose mode — or, for an exclusive hold, transaction — does not match
  /// the head is from an entry the lease sweep already force-released, and
  /// popping blindly would dequeue another waiter's entry. `lease_forced`
  /// releases are internal (the sweep releasing the head) and exempt from
  /// validation.
  ///
  /// With a deadlock policy set, a shared release additionally removes the
  /// releaser's *own* entry from the granted shared run (kStale if absent,
  /// e.g. the release crossed a wound in flight) instead of blind-popping
  /// the front: the policies read queue txn labels for age checks and wound
  /// targets, so labels must track actual holders.
  ReleaseOutcome Release(LockId lock, LockMode mode, TxnId txn,
                         bool lease_forced, SimTime now);

  /// Forced-releases queue heads granted at or before now - lease
  /// (Section 4.5). Returns the number of entries force-released.
  std::uint64_t ClearExpired(SimTime lease, SimTime now);

  // --- Ownership / migration (server<->switch moves, failover) ---

  bool Owns(LockId lock) const { return Lookup(lock) != kNone; }
  bool QueueEmpty(LockId lock) const;
  std::size_t QueueDepth(LockId lock) const;
  /// Queued entries across all locks (0 once fully drained — leak check).
  std::size_t TotalQueueDepth() const;

  /// Creates the lock's entry if missing and sets its paused flag. Paused
  /// locks buffer acquires and never grant.
  void SetPaused(LockId lock, bool paused);
  bool IsPaused(LockId lock) const;

  /// Drains and returns the paused-side buffer (entries received while
  /// paused), leaving the paused flag untouched.
  std::deque<QueueSlot> TakePausedBuffer(LockId lock);

  /// Installs `queue` (possibly empty) as the lock's active queue and
  /// grants the new front per the usual rules, re-stamping granted entries
  /// to `now`. The lock must not already have an active queue. Used when a
  /// lock migrates in with its overflow (q2) backlog.
  void AdoptQueue(LockId lock, std::deque<QueueSlot> queue, SimTime now);

  /// Unconditionally discards a lock's state (eviction / failover).
  void Drop(LockId lock);

  /// Discards a lock known to be drained (asserts queue + buffer empty).
  void DropDrained(LockId lock);

  /// Discards everything (crash).
  void Clear();

  std::vector<LockId> OwnedLocks() const;
  std::size_t num_owned() const { return size_; }

  /// Harvests per-lock demand counters (rates normalized by `window_sec`),
  /// appending to `out`, and resets them (§4.3).
  void HarvestDemands(double window_sec, std::vector<LockDemand>& out);

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;
  /// Queue entries stored inline in the lock state (zero-indirection fast
  /// path; the paper's workloads rarely queue deeper than a handful).
  static constexpr std::uint32_t kInlineSlots = 4;
  /// Entries per slab chunk once a queue spills past the inline storage.
  static constexpr std::uint32_t kChunkSlots = 8;
  static_assert(kInlineSlots <= kChunkSlots,
                "spilling copies the inline ring into one chunk");

  /// One slab chunk: a fixed run of slots plus the next-chunk link.
  struct Chunk {
    QueueSlot slots[kChunkSlots];
    std::uint32_t next = kNone;
  };

  /// Free-list slab of chunks. Indices are stable (vector only grows);
  /// freed chunks are reused, so a warmed engine never allocates.
  class SlabPool {
   public:
    std::uint32_t Alloc() {
      if (!free_.empty()) {
        const std::uint32_t idx = free_.back();
        free_.pop_back();
        chunks_[idx].next = kNone;
        return idx;
      }
      chunks_.emplace_back();
      return static_cast<std::uint32_t>(chunks_.size() - 1);
    }
    void Free(std::uint32_t idx) { free_.push_back(idx); }
    Chunk& at(std::uint32_t idx) { return chunks_[idx]; }
    const Chunk& at(std::uint32_t idx) const { return chunks_[idx]; }
    void Clear() {
      chunks_.clear();
      free_.clear();
    }

   private:
    std::vector<Chunk> chunks_;
    std::vector<std::uint32_t> free_;
  };

  /// FIFO wait queue: an inline ring while depth stays <= kInlineSlots,
  /// a chunk chain after it spills (reverting to inline when it empties).
  struct WaitQueue {
    QueueSlot inline_slots[kInlineSlots];
    std::uint32_t count = 0;
    /// Inline mode: ring index of the front. Spilled: front offset within
    /// the head chunk.
    std::uint32_t head = 0;
    std::uint32_t head_chunk = kNone;
    std::uint32_t tail_chunk = kNone;
    std::uint32_t tail_off = 0;  ///< Next free slot in the tail chunk.
    bool spilled = false;

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    QueueSlot& Front(SlabPool& pool) {
      return spilled ? pool.at(head_chunk).slots[head] : inline_slots[head];
    }
    const QueueSlot& Front(const SlabPool& pool) const {
      return spilled ? pool.at(head_chunk).slots[head] : inline_slots[head];
    }

    void PushBack(const QueueSlot& slot, SlabPool& pool);
    void PopFront(SlabPool& pool);
    /// Frees any chunks and empties the queue.
    void Reset(SlabPool& pool);

    /// Forward cursor from the front; valid while the queue is unchanged.
    struct Cursor {
      std::uint32_t remaining = 0;
      std::uint32_t chunk = kNone;  ///< kNone in inline mode.
      std::uint32_t off = 0;
    };
    Cursor Begin() const {
      Cursor c;
      c.remaining = count;
      c.chunk = spilled ? head_chunk : kNone;
      c.off = head;
      return c;
    }
    bool Done(const Cursor& c) const { return c.remaining == 0; }
    QueueSlot& At(const Cursor& c, SlabPool& pool) {
      return c.chunk == kNone ? inline_slots[c.off]
                              : pool.at(c.chunk).slots[c.off];
    }
    void Advance(Cursor& c, const SlabPool& pool) const {
      --c.remaining;
      if (c.chunk == kNone) {
        c.off = (c.off + 1) % kInlineSlots;
        return;
      }
      if (++c.off == kChunkSlots) {
        c.chunk = pool.at(c.chunk).next;
        c.off = 0;
      }
    }

   private:
    void Spill(SlabPool& pool);
  };

  /// Per-lock software queue with switch-equivalent semantics. Pool slots
  /// with key == kInvalidLock are free.
  struct LockState {
    LockId key = kInvalidLock;
    WaitQueue queue;          ///< Entries remain until released.
    WaitQueue paused_buffer;  ///< Entries received while paused.
    std::uint32_t xcnt = 0;   ///< Exclusive entries among queue.
    bool paused = false;
    std::uint64_t req_count = 0;  ///< r_i demand counter (§4.3).
    std::uint32_t max_depth = 1;  ///< c_i demand counter.
  };

  /// Open-addressing bucket: {key, state index}. `state` doubles as the
  /// occupancy marker (kEmptySlot / kTombstone sentinels).
  struct Bucket {
    LockId key = 0;
    std::uint32_t state = kEmptySlot;
  };
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;
  static constexpr std::uint32_t kTombstone = 0xfffffffeu;

  /// Bucket-index mix, deliberately different from the RSS core hash so the
  /// per-core residue classes don't cluster the probe sequence.
  static std::uint32_t HashLock(LockId lock) {
    std::uint32_t h = lock;
    h ^= h >> 16;
    h *= 0x85ebca6bu;
    h ^= h >> 13;
    h *= 0xc2b2ae35u;
    h ^= h >> 16;
    return h;
  }

  /// Index of the lock's state, or kNone.
  std::uint32_t Lookup(LockId lock) const;
  LockState& FindOrCreate(LockId lock);
  /// Two queue entries conflict when they belong to different transactions
  /// and at least one side is exclusive (same-txn retransmit duplicates
  /// never self-abort).
  static bool Conflicts(const QueueSlot& a, const QueueSlot& b) {
    if (a.txn_id == b.txn_id) return false;
    return a.mode == LockMode::kExclusive || b.mode == LockMode::kExclusive;
  }
  /// Granted entries are always a queue prefix: the whole leading shared
  /// run, or just the head when it is exclusive. (Acquire only grants when
  /// appending keeps the prefix property; Release pops the front and
  /// re-grants the new prefix; removals re-grant through the same rule.)
  std::uint32_t GrantedCount(LockState& st);
  bool AnyConflict(LockState& st, const QueueSlot& slot);
  bool ConflictsWithOlder(LockState& st, const QueueSlot& slot);
  /// Removes entries of `txn` (or, with `wound_against` set, every entry
  /// conflicting with *wound_against that is younger than it) from `q`,
  /// preserving FIFO order of the survivors. Active-queue removals
  /// (`active` = true) maintain xcnt and re-grant the promoted prefix.
  RemoveResult RemoveMatching(LockId lock, LockState& st, WaitQueue& q,
                              bool active, TxnId txn,
                              const QueueSlot* wound_against, SimTime now,
                              bool notify, AbortReason reason);
  /// Removes the lock if present, returning its queues' chunks to the slab.
  void Erase(LockId lock);
  void Rehash();
  std::uint32_t AllocState();
  void FreeState(std::uint32_t idx);

  GrantSink& sink_;
  DeadlockPolicy policy_ = DeadlockPolicy::kNone;
  std::vector<Bucket> buckets_;  ///< Power-of-two open-addressing table.
  std::vector<LockState> states_;
  std::vector<std::uint32_t> free_states_;
  SlabPool pool_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace netlock
