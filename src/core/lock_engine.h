// Substrate-neutral lock wait-queue engine.
//
// The software lock-queue protocol — FIFO queue per lock, Algorithm 2's
// grant cascade on release, pause/grace buffering for migration and
// failover, lease-forced release, and the r_i/c_i demand counters — used to
// live inside LockServer, welded to the simulated Network. It is extracted
// here so the exact same compiled code runs on both execution substrates:
//
//   * the simulator: LockServer wraps a LockEngine, feeding it packets
//     after the simulated per-core service time and emitting grants as
//     simulated packets;
//   * the real-time backend: RtLockService shards one LockEngine per
//     worker core (RSS lock->core hashing keeps each lock single-threaded)
//     and emits grants into SPSC completion rings.
//
// The engine itself is single-threaded and knows nothing about time
// sources: callers pass `now` (simulated or wall-clock nanoseconds) into
// every operation, and grant decisions come out through a GrantSink.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dataplane/slot.h"

namespace netlock {

/// Receives the engine's grant decisions. Implementations deliver the grant
/// to `slot.client_node` by whatever transport the substrate uses.
class GrantSink {
 public:
  virtual ~GrantSink() = default;

  /// `slot` became a holder of `lock`. slot.timestamp is the grant time.
  virtual void DeliverGrant(LockId lock, const QueueSlot& slot) = 0;

  /// A queued entry is about to be granted after waiting; called with the
  /// slot still carrying its enqueue timestamp (the sim wires wait-span
  /// tracing here). Entries granted immediately on acquire do not wait and
  /// do not produce this call.
  virtual void OnWaitEnd(LockId /*lock*/, const QueueSlot& /*slot*/,
                         SimTime /*now*/) {}
};

/// What a release did. The caller maps outcomes onto its stats/metrics.
enum class ReleaseOutcome : std::uint8_t {
  kApplied = 0,     ///< Head popped; cascade grants (if any) delivered.
  kStale = 1,       ///< Unknown lock or empty queue; dropped.
  kMismatched = 2,  ///< Mode/txn does not match the head (already swept).
};

class LockEngine {
 public:
  explicit LockEngine(GrantSink& sink) : sink_(sink) {}

  LockEngine(const LockEngine&) = delete;
  LockEngine& operator=(const LockEngine&) = delete;

  // --- Request path ---

  /// Appends an entry (stamping slot.timestamp = now) and grants it when
  /// the queue head rules allow: first entry, or a shared request joining
  /// an all-shared queue. Paused locks buffer instead.
  void Acquire(LockId lock, QueueSlot slot, SimTime now);

  /// Validated dequeue with the switch-equivalent grant cascade: a release
  /// whose mode — or, for an exclusive hold, transaction — does not match
  /// the head is from an entry the lease sweep already force-released, and
  /// popping blindly would dequeue another waiter's entry. `lease_forced`
  /// releases are internal (the sweep releasing the head) and exempt from
  /// validation.
  ReleaseOutcome Release(LockId lock, LockMode mode, TxnId txn,
                         bool lease_forced, SimTime now);

  /// Forced-releases queue heads granted at or before now - lease
  /// (Section 4.5). Returns the number of entries force-released.
  std::uint64_t ClearExpired(SimTime lease, SimTime now);

  // --- Ownership / migration (server<->switch moves, failover) ---

  bool Owns(LockId lock) const { return owned_.find(lock) != owned_.end(); }
  bool QueueEmpty(LockId lock) const;
  std::size_t QueueDepth(LockId lock) const;
  /// Queued entries across all locks (0 once fully drained — leak check).
  std::size_t TotalQueueDepth() const;

  /// Creates the lock's entry if missing and sets its paused flag. Paused
  /// locks buffer acquires and never grant.
  void SetPaused(LockId lock, bool paused);
  bool IsPaused(LockId lock) const;

  /// Drains and returns the paused-side buffer (entries received while
  /// paused), leaving the paused flag untouched.
  std::deque<QueueSlot> TakePausedBuffer(LockId lock);

  /// Installs `queue` (possibly empty) as the lock's active queue and
  /// grants the new front per the usual rules, re-stamping granted entries
  /// to `now`. The lock must not already have an active queue. Used when a
  /// lock migrates in with its overflow (q2) backlog.
  void AdoptQueue(LockId lock, std::deque<QueueSlot> queue, SimTime now);

  /// Unconditionally discards a lock's state (eviction / failover).
  void Drop(LockId lock) { owned_.erase(lock); }

  /// Discards a lock known to be drained (asserts queue + buffer empty).
  void DropDrained(LockId lock);

  /// Discards everything (crash).
  void Clear() { owned_.clear(); }

  std::vector<LockId> OwnedLocks() const;
  std::size_t num_owned() const { return owned_.size(); }

  /// Harvests per-lock demand counters (rates normalized by `window_sec`),
  /// appending to `out`, and resets them (§4.3).
  void HarvestDemands(double window_sec, std::vector<LockDemand>& out);

 private:
  /// Per-lock software queue with switch-equivalent semantics.
  struct OwnedLock {
    std::deque<QueueSlot> queue;  ///< Entries remain until released.
    std::uint32_t xcnt = 0;       ///< Exclusive entries among them.
    bool paused = false;
    std::deque<QueueSlot> paused_buffer;
    std::uint64_t req_count = 0;  ///< r_i demand counter (§4.3).
    std::uint32_t max_depth = 1;  ///< c_i demand counter.
  };

  /// Grants the queue front (and, when it is shared, the following run of
  /// shared entries), emitting wait spans and re-stamping timestamps.
  void GrantFront(LockId lock, OwnedLock& owned, SimTime now);

  GrantSink& sink_;
  std::unordered_map<LockId, OwnedLock> owned_;
};

}  // namespace netlock
