#include "core/chain.h"

#include "common/check.h"
#include "server/lock_server.h"

namespace netlock {

ChainManager::ChainManager(Simulator& sim, LockSwitch& head,
                           LockSwitch& tail, ControlPlane& control)
    : sim_(sim), head_(head), tail_(tail), control_(control) {}

void ChainManager::Enable() {
  NETLOCK_CHECK(!enabled_);
  enabled_ = true;
  // Mirror the allocation: identical install sequence yields identical
  // region layout and metadata indices, the precondition for the replicas
  // evolving in lock-step.
  tail_.SetDefaultRoute(
      [this](LockId lock) { return control_.ServerFor(lock); });
  for (const auto& [lock, slots] : control_.installed().switch_slots) {
    if (head_.IsInstalled(lock)) {
      const bool ok =
          tail_.InstallLock(lock, control_.ServerFor(lock), slots);
      NETLOCK_CHECK(ok);
    }
  }
  head_.ConfigureChainHead(tail_.node());
  tail_.ConfigureChainTail(head_.node());
  control_.SetChain(ControlPlane::ChainMode::kChained, &tail_);
  // Writes (ops) enter at the head; server pushes are writes.
  for (LockServer* server : control_.servers()) {
    server->set_switch_node(head_.node());
  }
}

void ChainManager::RegisterSession(NetLockSession* session) {
  NETLOCK_CHECK(session != nullptr);
  sessions_.push_back(session);
}

void ChainManager::FailHead() {
  NETLOCK_CHECK(enabled_ && !head_failed_);
  head_failed_ = true;
  head_.Fail();
  tail_.PromoteStandalone();
  control_.SetChain(ControlPlane::ChainMode::kTailPromoted, &tail_);
  for (LockServer* server : control_.servers()) {
    server->set_switch_node(tail_.node());
  }
  // Routing update: new acquires target the tail, and releases recorded
  // against the head flow to the tail — which holds the identical state,
  // so every in-flight hold completes normally. No lease wait.
  for (NetLockSession* session : sessions_) {
    session->set_switch_node(tail_.node());
    session->RedirectGrantSource(head_.node(), tail_.node());
  }
}

}  // namespace netlock
