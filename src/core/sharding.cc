#include "core/sharding.h"

#include <string>

#include "common/check.h"

namespace netlock {

namespace {

/// Static process names for the trace exporter (it stores pointers, never
/// copies). Racks beyond the table keep their pid but go unnamed.
constexpr const char* kRackNames[] = {
    "rack0",  "rack1",  "rack2",  "rack3",  "rack4",  "rack5",
    "rack6",  "rack7",  "rack8",  "rack9",  "rack10", "rack11",
    "rack12", "rack13", "rack14", "rack15"};
constexpr int kNumRackNames =
    static_cast<int>(sizeof(kRackNames) / sizeof(kRackNames[0]));

}  // namespace

// --- LockDirectory ---

LockDirectory::LockDirectory(int num_racks) : num_racks_(num_racks) {
  NETLOCK_CHECK(num_racks >= 1);
}

int LockDirectory::HashRack(LockId lock, int num_racks) {
  // SplitMix64-style finalizer: uncorrelated with the control plane's
  // server-partition hash and the trace sampler, so rack assignment does
  // not alias either.
  std::uint64_t h = lock;
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<int>(h % static_cast<std::uint64_t>(num_racks));
}

void LockDirectory::SetOverride(LockId lock, int rack) {
  NETLOCK_CHECK(rack >= 0 && rack < num_racks_);
  overrides_[lock] = rack;
}

void LockDirectory::ClearOverride(LockId lock) { overrides_.erase(lock); }

// --- ShardedSession ---

ShardedSession::ShardedSession(
    const LockDirectory& directory,
    std::vector<std::unique_ptr<LockSession>> rack_sessions)
    : directory_(directory), rack_sessions_(std::move(rack_sessions)) {
  NETLOCK_CHECK(!rack_sessions_.empty());
  NETLOCK_CHECK(static_cast<int>(rack_sessions_.size()) ==
                directory_.num_racks());
}

void ShardedSession::Acquire(LockId lock, LockMode mode, TxnId txn,
                             Priority priority, AcquireCallback cb) {
  // The routing decision is made exactly once, here: the inner session owns
  // retransmissions, so every copy of this request goes to the same rack
  // even if the directory flips while it is in flight.
  const int rack = directory_.RackFor(lock);
  acquire_rack_[RouteKey{lock, txn}] = rack;
  rack_sessions_[rack]->Acquire(
      lock, mode, txn, priority,
      [this, lock, txn, cb = std::move(cb)](AcquireResult result) {
        if (result != AcquireResult::kGranted) {
          // Nothing to release later: drop the route.
          acquire_rack_.erase(RouteKey{lock, txn});
        }
        cb(result);
      });
}

void ShardedSession::Release(LockId lock, LockMode mode, TxnId txn) {
  // Route to the rack that granted, not the rack the directory names now:
  // a re-home between grant and release must not strand the release.
  int rack = directory_.RackFor(lock);
  const auto it = acquire_rack_.find(RouteKey{lock, txn});
  if (it != acquire_rack_.end()) {
    rack = it->second;
    acquire_rack_.erase(it);
  }
  rack_sessions_[rack]->Release(lock, mode, txn);
}

// --- ShardedNetLock ---

ShardedNetLock::ShardedNetLock(Network& net, ShardedNetLockOptions options)
    : net_(net), options_(options), directory_(options.num_racks) {
  NETLOCK_CHECK(options_.num_racks >= 1);
  const bool label = options_.label_racks && options_.num_racks > 1;
  SimContext& context = net_.sim().context();
  racks_.reserve(options_.num_racks);
  for (int r = 0; r < options_.num_racks; ++r) {
    if (label) {
      // Rack-owned components resolve their instruments and capture their
      // trace pid at construction; scoping both here labels everything the
      // rack allocates without touching single-rack behaviour.
      ScopedMetricPrefix prefix(context.metrics(),
                                "rack" + std::to_string(r) + ".");
      TraceLog::PidScope pid(context.trace(),
                             static_cast<std::uint32_t>(r) + 1);
      if (r < kNumRackNames) {
        context.trace().SetPidName(static_cast<std::uint32_t>(r) + 1,
                                   kRackNames[r]);
      }
      racks_.push_back(std::make_unique<NetLockManager>(net_, options_.rack));
    } else {
      racks_.push_back(std::make_unique<NetLockManager>(net_, options_.rack));
    }
  }
}

void ShardedNetLock::InstallAllocation(const Allocation& allocation) {
  std::vector<Allocation> per_rack(racks_.size());
  for (const auto& [lock, slots] : allocation.switch_slots) {
    per_rack[directory_.RackFor(lock)].switch_slots.emplace_back(lock,
                                                                 slots);
  }
  for (const LockId lock : allocation.server_only) {
    per_rack[directory_.RackFor(lock)].server_only.push_back(lock);
  }
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    racks_[r]->InstallAllocation(per_rack[r]);
  }
}

void ShardedNetLock::InstallKnapsack(
    const std::vector<LockDemand>& demands) {
  std::vector<std::vector<LockDemand>> per_rack(racks_.size());
  for (const LockDemand& demand : demands) {
    per_rack[directory_.RackFor(demand.lock)].push_back(demand);
  }
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    racks_[r]->InstallKnapsack(per_rack[r]);
  }
}

std::unique_ptr<LockSession> ShardedNetLock::CreateSession(
    ClientMachine& machine, TenantId tenant) {
  if (racks_.size() == 1) return racks_[0]->CreateSession(machine, tenant);
  std::vector<std::unique_ptr<LockSession>> sessions;
  sessions.reserve(racks_.size());
  for (auto& rack : racks_) {
    sessions.push_back(rack->CreateSession(machine, tenant));
  }
  return std::make_unique<ShardedSession>(directory_, std::move(sessions));
}

std::uint64_t ShardedNetLock::SwitchGrants() const {
  std::uint64_t total = 0;
  for (const auto& rack : racks_) total += rack->SwitchGrants();
  return total;
}

std::uint64_t ShardedNetLock::ServerGrants() const {
  std::uint64_t total = 0;
  for (const auto& rack : racks_) total += rack->ServerGrants();
  return total;
}

bool ShardedNetLock::RehomeLock(LockId lock, int to_rack,
                                std::function<void()> done) {
  NETLOCK_CHECK(to_rack >= 0 && to_rack < num_racks());
  const int from_rack = directory_.RackFor(lock);
  if (from_rack == to_rack || RehomeInFlight(lock)) {
    if (done) done();
    return false;
  }
  rehoming_.insert(lock);
  NetLockManager& src = *racks_[from_rack];
  NetLockManager& dst = *racks_[to_rack];

  // Preserve the source's placement: a switch-resident lock re-homes onto
  // the target's switch with the same slot count; a server-owned lock
  // stays server-owned at the target.
  std::uint32_t slots = 0;
  if (src.lock_switch().IsInstalled(lock)) {
    const SwitchLockEntry* entry = src.lock_switch().table().Find(lock);
    for (const LockBounds& region : entry->regions) {
      slots += region.right - region.left;
    }
  }
  // Step 1: stage the lock at the target, suspended — requests may queue
  // there but nothing is granted while the source still holds state.
  const bool dst_on_switch =
      slots > 0 && dst.lock_switch().InstallLock(
                       lock, dst.control_plane().ServerFor(lock), slots,
                       /*suspended=*/true);
  if (!dst_on_switch) {
    // Target serves it from the lock server (switch full or the lock was
    // server-owned at the source): route it and pause the owned queue.
    dst.control_plane().RegisterServerLock(lock);
    dst.control_plane().ServerObjFor(lock).PauseLock(lock, true);
  }
  // Step 2: flip the directory. New acquires route to the (still
  // suspended) target; requests already in flight — and their
  // retransmissions — stay with the source, which keeps granting until its
  // queue drains.
  directory_.SetOverride(lock, to_rack);

  // Step 4 (scheduled from step 3 below): the source is drained — drop its
  // state, tombstone-route stragglers to the target's switch, activate.
  auto finish = [this, lock, from_rack, to_rack, dst_on_switch,
                 done = std::move(done)]() {
    NetLockManager& source = *racks_[from_rack];
    NetLockManager& target = *racks_[to_rack];
    // Any stray for this lock still addressed to the source (a duplicated
    // release, a late retransmission) forwards to the target's switch,
    // which now owns the lock and absorbs stale messages like any other
    // owner.
    source.lock_switch().SetHomeServer(lock, target.lock_switch().node());
    source.control_plane().ServerObjFor(lock).DropState(lock);
    if (dst_on_switch) {
      target.lock_switch().Activate(lock);
    } else {
      LockServer& server = target.control_plane().ServerObjFor(lock);
      server.PauseLock(lock, false);
      server.TakeOwnership(lock);  // Converts any q2 buffer, grants head.
      // Requests buffered while paused re-enter through the target's
      // switch in arrival order.
      server.ForwardBufferedToSwitch(lock);
    }
    rehoming_.erase(lock);
    ++rehomes_completed_;
    if (done) done();
  };

  // Step 3: drain the source. If the lock is switch-resident there, first
  // move it down to the source's server (pause -> drain -> TakeOwnership,
  // the control plane's own protocol), then poll until every grant has
  // been released and nothing is buffered.
  auto poll = std::make_shared<std::function<void()>>();
  const SimTime interval = options_.rehome_poll_interval;
  *poll = [this, lock, from_rack, finish = std::move(finish), poll,
           interval]() {
    NetLockManager& source = *racks_[from_rack];
    LockServer& server = source.control_plane().ServerObjFor(lock);
    if (!server.QueueEmpty(lock) || server.OverflowDepth(lock) > 0) {
      net_.sim().Schedule(interval, *poll);
      return;
    }
    finish();
  };
  if (src.lock_switch().IsInstalled(lock)) {
    src.control_plane().MoveLockToServer(
        lock, [this, poll, interval]() {
          net_.sim().Schedule(interval, *poll);
        });
  } else {
    net_.sim().Schedule(interval, *poll);
  }
  return true;
}

}  // namespace netlock
