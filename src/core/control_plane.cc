#include "core/control_plane.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

ControlPlane::ControlPlane(Simulator& sim, LockSwitch& lock_switch,
                           std::vector<LockServer*> servers,
                           ControlPlaneConfig config)
    : sim_(sim), switch_(lock_switch), servers_(std::move(servers)),
      alive_(servers_.size(), true), config_(config) {
  NETLOCK_CHECK(!servers_.empty());
  for (LockServer* server : servers_) {
    NETLOCK_CHECK(server != nullptr);
    server->set_switch_node(switch_.node());
  }
  // The switch routes locks without an exact-match entry by the same hash
  // partitioning the clients' directory uses, so the table stays small even
  // for multi-million-row lock spaces.
  switch_.SetDefaultRoute([this](LockId lock) { return ServerFor(lock); });
}

NodeId ControlPlane::ServerFor(LockId lock) const {
  return ServerObjFor(lock).node();
}

LockServer& ControlPlane::ServerObjFor(LockId lock) const {
  std::uint64_t h = lock;
  h ^= h >> 15;
  h *= 0x2c1b3c6dull;
  h ^= h >> 12;
  // Linear probing over the alive set: a failed server's locks spill onto
  // the survivors deterministically, and return home on recovery.
  const std::size_t n = servers_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t index = (h + probe) % n;
    if (alive_[index]) return *servers_[index];
  }
  NETLOCK_CHECK(false);  // All lock servers down: the rack is gone.
  return *servers_[0];
}

void ControlPlane::InstallAllocation(const Allocation& allocation) {
  installed_ = allocation;
  for (const auto& [lock, slots] : allocation.switch_slots) {
    const NodeId home = ServerFor(lock);
    // The switch becomes the owner: the home server must not keep (or act
    // on) owned-lock state from before — otherwise overflow requests marked
    // buffer-only would be wrongly granted server-side (split-brain).
    ServerObjFor(lock).EvictOwnership(lock);
    if (!switch_.InstallLock(lock, home, slots)) {
      // Switch table/memory exhausted (fragmentation): serve from the
      // server instead; routing below still covers it.
      switch_.SetHomeServer(lock, home);
    }
  }
  // Server-only locks need no per-lock entries: the default hash route
  // already sends them to their home servers.
}

void ControlPlane::RegisterServerLock(LockId lock) {
  switch_.SetHomeServer(lock, ServerFor(lock));
}

void ControlPlane::StartLeasePolling() {
  if (lease_polling_) return;
  lease_polling_ = true;
  PollLeases();
}

void ControlPlane::SetChain(ChainMode mode, LockSwitch* tail) {
  NETLOCK_CHECK(mode == ChainMode::kNone || tail != nullptr);
  chain_mode_ = mode;
  chain_tail_ = tail;
}

void ControlPlane::PollLeases() {
  sim_.Schedule(config_.lease_poll_interval, [this]() {
    switch (chain_mode_) {
      case ChainMode::kNone:
        switch_.ClearExpired(config_.lease);
        break;
      case ChainMode::kChained:
        // Forced releases replicate through the head; the tail (the
        // emitting replica) owns the overflow re-arm.
        switch_.ClearExpired(config_.lease,
                             LockSwitch::SweepScope::kForcedReleasesOnly);
        chain_tail_->ClearExpired(config_.lease,
                                  LockSwitch::SweepScope::kOverflowRearmOnly);
        break;
      case ChainMode::kTailPromoted:
        chain_tail_->ClearExpired(config_.lease);
        break;
    }
    for (LockServer* server : servers_) {
      server->ClearExpired(config_.lease);
    }
    PollLeases();
  });
}

void ControlPlane::RecordRequest(LockId lock, std::uint32_t concurrent) {
  DemandCounters& counters = counters_[lock];
  ++counters.requests;
  counters.max_concurrent = std::max(counters.max_concurrent,
                                     std::max(1u, concurrent));
}

std::vector<LockDemand> ControlPlane::MeasuredDemands() const {
  const double window_sec =
      std::max<double>(static_cast<double>(sim_.now() - window_start_),
                       1.0) /
      static_cast<double>(kSecond);
  std::vector<LockDemand> demands;
  demands.reserve(counters_.size());
  for (const auto& [lock, counters] : counters_) {
    demands.push_back(LockDemand{
        lock, static_cast<double>(counters.requests) / window_sec,
        counters.max_concurrent});
  }
  std::sort(demands.begin(), demands.end(),
            [](const LockDemand& a, const LockDemand& b) {
              return a.lock < b.lock;
            });
  return demands;
}

std::vector<LockDemand> ControlPlane::HarvestDemands() {
  const double window_sec =
      std::max<double>(static_cast<double>(sim_.now() - window_start_),
                       1.0) /
      static_cast<double>(kSecond);
  window_start_ = sim_.now();
  std::vector<LockDemand> demands;
  switch_.HarvestDemands(window_sec, demands);
  for (LockServer* server : servers_) {
    server->HarvestDemands(window_sec, demands);
  }
  return demands;
}

void ControlPlane::CommitSwitchInstall(LockId lock, std::uint32_t slots) {
  for (auto& entry : installed_.switch_slots) {
    if (entry.first == lock) {
      entry.second = slots;
      return;
    }
  }
  installed_.switch_slots.emplace_back(lock, slots);
  installed_.server_only.erase(std::remove(installed_.server_only.begin(),
                                           installed_.server_only.end(), lock),
                               installed_.server_only.end());
}

void ControlPlane::CommitSwitchRemoval(LockId lock) {
  auto& slots = installed_.switch_slots;
  const auto it = std::find_if(
      slots.begin(), slots.end(),
      [lock](const std::pair<LockId, std::uint32_t>& entry) {
        return entry.first == lock;
      });
  if (it != slots.end()) slots.erase(it);
  if (std::find(installed_.server_only.begin(), installed_.server_only.end(),
                lock) == installed_.server_only.end()) {
    installed_.server_only.push_back(lock);
  }
}

void ControlPlane::MoveLockToServer(LockId lock, std::function<void()> done) {
  NETLOCK_CHECK(switch_.IsInstalled(lock));
  // §4.3: pause enqueuing (new requests buffer in q2 at the home server),
  // wait until the switch queue drains, then hand ownership to the server.
  switch_.PauseLock(lock, true);
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [this, lock, done = std::move(done), poll]() {
    // A switch restart mid-drain wipes the entry (and its queue with it);
    // converge by completing the handoff rather than polling a ghost.
    if (switch_.IsInstalled(lock)) {
      if (!switch_.QueueEmpty(lock)) {
        sim_.Schedule(config_.drain_poll_interval, *poll);
        return;
      }
      switch_.RemoveLock(lock);
    }
    ServerObjFor(lock).TakeOwnership(lock);
    CommitSwitchRemoval(lock);
    if (done) done();
  };
  sim_.Schedule(config_.drain_poll_interval, *poll);
}

void ControlPlane::MoveLockToSwitch(LockId lock, std::uint32_t slots,
                                    std::function<void(bool)> done) {
  NETLOCK_CHECK(!switch_.IsInstalled(lock));
  LockServer& server = ServerObjFor(lock);
  // Pause the server's queue: new requests buffer server-side; existing
  // holders drain via releases.
  server.PauseLock(lock, true);
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [this, lock, slots, &server, done = std::move(done), poll]() {
    if (!server.QueueEmpty(lock)) {
      sim_.Schedule(config_.drain_poll_interval, *poll);
      return;
    }
    const bool installed =
        !switch_.IsInstalled(lock) &&
        switch_.InstallLock(lock, server.node(), slots);
    if (installed) {
      // Buffered requests re-enter through the switch, in order.
      server.ForwardBufferedToSwitch(lock);
      server.PauseLock(lock, false);
      server.DropOwnership(lock);
      CommitSwitchInstall(lock, slots);
    } else {
      // Could not place (fragmentation): resume serving on the server. The
      // allocation must reflect reality — the lock stays server-owned, so
      // a later RecoverSwitch() must not resurrect it on the switch.
      server.PauseLock(lock, false);
      server.TakeOwnership(lock);  // No-op on q2 but re-grants if needed.
      server.ForwardBufferedToSwitch(lock);
      CommitSwitchRemoval(lock);
    }
    if (done) done(installed);
  };
  sim_.Schedule(config_.drain_poll_interval, *poll);
}

std::vector<LockDemand> ControlPlane::CombinedDemands() {
  // Primary input: the data-plane counters; the software RecordRequest
  // counters cover locks observed out-of-band (e.g., by the client
  // library). A lock the data plane serves is usually counted by both
  // paths for the same requests, so the merge takes the per-lock max —
  // summing would double-count it and skew the knapsack.
  std::vector<LockDemand> demands = MeasuredDemands();
  std::unordered_map<LockId, std::size_t> index;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    index[demands[i].lock] = i;
  }
  for (const LockDemand& d : HarvestDemands()) {
    const auto it = index.find(d.lock);
    if (it == index.end()) {
      demands.push_back(d);
    } else {
      demands[it->second].rate = std::max(demands[it->second].rate, d.rate);
      demands[it->second].contention =
          std::max(demands[it->second].contention, d.contention);
    }
  }
  counters_.clear();
  window_start_ = sim_.now();
  std::sort(demands.begin(), demands.end(),
            [](const LockDemand& a, const LockDemand& b) {
              return a.lock < b.lock;
            });
  return demands;
}

bool ControlPlane::Reallocate(std::uint32_t switch_capacity,
                              std::function<void()> done) {
  // Reject before consuming the demand window: a rejected call must not
  // discard the counters the next successful call will need.
  if (migration_in_flight_) return false;
  const Allocation target =
      KnapsackAllocate(CombinedDemands(), switch_capacity);
  return ApplyAllocation(target, std::move(done));
}

bool ControlPlane::ApplyAllocation(const Allocation& target,
                                   std::function<void()> done) {
  if (migration_in_flight_) return false;

  // Compute the migration sets relative to what is installed:
  //  - to_remove: installed but no longer in the target;
  //  - resizes: installed with a different target slot count (contention
  //    grew or shrank) — drained out and reinstalled at the new size via
  //    the same remove-then-reinstall path;
  //  - to_add: in the target but not installed.
  std::unordered_map<LockId, std::uint32_t> target_slots;
  for (const auto& [lock, slots] : target.switch_slots) {
    target_slots.emplace(lock, slots);
  }
  std::vector<LockId> to_remove;
  std::vector<std::pair<LockId, std::uint32_t>> to_add;
  for (const LockId lock : switch_.table().InstalledLocks()) {
    const auto want_it = target_slots.find(lock);
    if (want_it == target_slots.end()) {
      to_remove.push_back(lock);
      continue;
    }
    const SwitchLockEntry* entry = switch_.table().Find(lock);
    std::uint32_t have = 0;
    for (const LockBounds& region : entry->regions) {
      have += region.right - region.left;
    }
    const std::uint32_t want = want_it->second;
    if (have != want) {
      to_remove.push_back(lock);
      to_add.emplace_back(lock, want);
    }
  }
  for (const auto& [lock, slots] : target.switch_slots) {
    if (!switch_.IsInstalled(lock)) to_add.emplace_back(lock, slots);
  }
  // Both sets come out of unordered_map iteration: fix the order so the
  // migration event sequence is independent of hash-table layout.
  std::sort(to_remove.begin(), to_remove.end());
  std::sort(to_add.begin(), to_add.end());
  // `installed_.switch_slots` is deliberately NOT overwritten here: each
  // entry commits as its migration lands (CommitSwitchInstall/Removal
  // inside the move primitives), so a RecoverSwitch() mid-batch reinstalls
  // exactly the locks the switch actually owned — never a lock whose
  // ownership had already been handed to (or never left) a server.
  installed_.server_only = target.server_only;
  installed_.guaranteed_rate = target.guaranteed_rate;

  if (to_remove.empty() && to_add.empty()) {
    if (done) done();
    return true;
  }
  migration_in_flight_ = true;

  // Removals first to make space, then additions — sequenced, not merely
  // ordered: an addition launched while removals are still draining sees a
  // full table, InstallLock fails, and the lock is stranded server-side
  // even though capacity frees moments later.
  struct State {
    std::vector<std::pair<LockId, std::uint32_t>> to_add;
    std::size_t removals_left = 0;
    std::size_t adds_left = 0;
    std::function<void()> done;
  };
  auto state = std::make_shared<State>();
  state->to_add = std::move(to_add);
  state->removals_left = to_remove.size();
  state->done = [this, done = std::move(done)]() {
    migration_in_flight_ = false;
    if (done) done();
  };

  auto launch_adds = [this, state]() {
    if (state->to_add.empty()) {
      state->done();
      return;
    }
    state->adds_left = state->to_add.size();
    for (const auto& [lock, slots] : state->to_add) {
      MoveLockToSwitch(lock, slots, [state](bool /*installed*/) {
        if (--state->adds_left == 0) state->done();
      });
    }
  };
  if (to_remove.empty()) {
    launch_adds();
    return true;
  }
  for (const LockId lock : to_remove) {
    MoveLockToServer(lock, [state, launch_adds]() {
      if (--state->removals_left == 0) launch_adds();
    });
  }
  return true;
}

void ControlPlane::RecoverSwitch() {
  switch_.Restart();
  // Reinstall the committed allocation, but suspended (queue-but-don't-
  // grant): grants issued before the crash are still live until their
  // leases expire, and an immediate regrant would overlap them — the
  // switch-restart analogue of the one-lease server grace below. Every
  // pre-crash grant predates the restart, so one lease from now they have
  // all expired; Activate then (the failover backup's handshake, §4.5).
  std::vector<LockId> reinstalled;
  for (const auto& [lock, slots] : installed_.switch_slots) {
    const NodeId home = ServerFor(lock);
    ServerObjFor(lock).EvictOwnership(lock);
    if (switch_.InstallLock(lock, home, slots, /*suspended=*/true)) {
      reinstalled.push_back(lock);
    } else {
      switch_.SetHomeServer(lock, home);
    }
  }
  sim_.Schedule(config_.lease,
                [this, reinstalled = std::move(reinstalled)] {
                  for (const LockId lock : reinstalled) {
                    // Skip locks a migration moved (or removed) meanwhile.
                    if (switch_.IsSuspended(lock)) switch_.Activate(lock);
                  }
                });
}

bool ControlPlane::ServerAlive(int index) const {
  NETLOCK_CHECK(index >= 0 &&
                index < static_cast<int>(servers_.size()));
  return alive_[index];
}

void ControlPlane::ReassignInstalledHomes() {
  for (const LockId lock : switch_.table().InstalledLocks()) {
    switch_.table().ReassignHomeServer(lock, ServerFor(lock));
  }
}

void ControlPlane::FailServer(int index) {
  NETLOCK_CHECK(index >= 0 &&
                index < static_cast<int>(servers_.size()));
  NETLOCK_CHECK(alive_[index]);
  servers_[index]->Fail();
  alive_[index] = false;
  // Survivors inherit the dead server's locks but must not grant them for
  // one lease: grants issued by the dead server may still be held.
  const SimTime grace = sim_.now() + config_.lease;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (alive_[i]) servers_[i]->GracePeriodUntil(grace);
  }
  // q2 overflow buffers of switch-resident locks homed on the dead server
  // move too (their content died with it; the overflow wedge sweep
  // re-arms the handshake against the new home).
  ReassignInstalledHomes();
}

void ControlPlane::RecoverServer(int index) {
  NETLOCK_CHECK(index >= 0 &&
                index < static_cast<int>(servers_.size()));
  NETLOCK_CHECK(!alive_[index]);
  servers_[index]->Restart();
  alive_[index] = true;
  // The recovered server may immediately receive its old locks (the hash
  // routes them home again), some of whose grants were issued by a
  // substitute moments ago: grace-gate it for one lease.
  servers_[index]->GracePeriodUntil(sim_.now() + config_.lease);
  // Substitutes drop the state they took over for re-homed locks; their
  // waiting clients re-submit (client retransmission) to the new home.
  const NodeId recovered = servers_[index]->node();
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (static_cast<int>(i) == index || !alive_[i]) continue;
    for (const LockId lock : servers_[i]->OwnedLocks()) {
      if (ServerFor(lock) == recovered) servers_[i]->DropState(lock);
    }
  }
  ReassignInstalledHomes();
}

}  // namespace netlock
