#include "core/memory_alloc.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace netlock {

bool Allocation::InSwitch(LockId lock) const {
  return std::any_of(switch_slots.begin(), switch_slots.end(),
                     [lock](const auto& p) { return p.first == lock; });
}

Allocation KnapsackAllocate(std::vector<LockDemand> demands,
                            std::uint32_t switch_capacity) {
  for (const LockDemand& d : demands) NETLOCK_CHECK(d.contention >= 1);
  // Algorithm 3 line 1: sort by r_i / c_i decreasing (ties broken by lock id
  // for determinism).
  std::sort(demands.begin(), demands.end(),
            [](const LockDemand& a, const LockDemand& b) {
              const double da = a.rate / a.contention;
              const double db = b.rate / b.contention;
              if (da != db) return da > db;
              return a.lock < b.lock;
            });
  Allocation result;
  std::uint32_t available = switch_capacity;
  for (const LockDemand& d : demands) {
    const std::uint32_t s = std::min(available, d.contention);
    if (s == 0) {
      result.server_only.push_back(d.lock);
      continue;
    }
    available -= s;
    result.switch_slots.emplace_back(d.lock, s);
    result.guaranteed_rate += d.rate * s / d.contention;
  }
  return result;
}

Allocation IncrementalKnapsack(const Allocation& seed,
                               const std::vector<LockDemand>& demands,
                               std::uint32_t switch_capacity,
                               const IncrementalPolicy& policy) {
  std::unordered_map<LockId, std::uint32_t> seed_slots;
  for (const auto& [lock, s] : seed.switch_slots) seed_slots.emplace(lock, s);

  struct Candidate {
    LockDemand demand;
    double key = 0.0;  ///< Boosted density (sort key).
    bool incumbent = false;
  };
  std::vector<Candidate> slice;
  slice.reserve(demands.size());
  std::unordered_map<LockId, bool> touched;
  touched.reserve(demands.size());
  for (const LockDemand& d : demands) {
    NETLOCK_CHECK(d.contention >= 1);
    touched.emplace(d.lock, true);
    Candidate c;
    c.demand = d;
    c.incumbent = seed_slots.find(d.lock) != seed_slots.end();
    c.key = d.rate / d.contention;
    if (c.incumbent) c.key *= policy.incumbent_boost;
    slice.push_back(c);
  }

  Allocation result;
  std::uint32_t available = switch_capacity;
  // Untouched incumbents — no fresh demand observation — keep their slots
  // verbatim; only the dirty slice is re-packed around them.
  for (const auto& [lock, s] : seed.switch_slots) {
    if (touched.find(lock) != touched.end()) continue;
    const std::uint32_t keep = std::min(available, s);
    if (keep == 0) {
      result.server_only.push_back(lock);
      continue;
    }
    available -= keep;
    result.switch_slots.emplace_back(lock, keep);
  }

  // Greedy fill of the slice by boosted density (ties: incumbents first —
  // never churn on an exact tie — then lock id for determinism).
  std::sort(slice.begin(), slice.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.key != b.key) return a.key > b.key;
              if (a.incumbent != b.incumbent) return a.incumbent;
              return a.demand.lock < b.demand.lock;
            });
  for (const Candidate& c : slice) {
    const LockDemand& d = c.demand;
    std::uint32_t want = std::min(available, d.contention);
    if (c.incumbent && policy.min_resize_delta > 0) {
      const std::uint32_t have = seed_slots[d.lock];
      const std::uint32_t delta = want > have ? want - have : have - want;
      if (delta < policy.min_resize_delta) want = std::min(available, have);
    }
    if (want == 0 || d.rate <= 0.0) {
      result.server_only.push_back(d.lock);
      continue;
    }
    available -= want;
    result.switch_slots.emplace_back(d.lock, want);
    result.guaranteed_rate +=
        d.rate * std::min(want, d.contention) / d.contention;
  }
  return result;
}

Allocation RandomAllocate(std::vector<LockDemand> demands,
                          std::uint32_t switch_capacity, std::uint64_t seed) {
  Rng rng(seed);
  // Fisher-Yates shuffle: random admission order regardless of popularity.
  for (std::size_t i = demands.size(); i > 1; --i) {
    std::swap(demands[i - 1], demands[rng.NextBounded(i)]);
  }
  Allocation result;
  std::uint32_t available = switch_capacity;
  for (const LockDemand& d : demands) {
    const std::uint32_t s = std::min(available, d.contention);
    if (s == 0) {
      result.server_only.push_back(d.lock);
      continue;
    }
    available -= s;
    result.switch_slots.emplace_back(d.lock, s);
    result.guaranteed_rate += d.rate * s / d.contention;
  }
  return result;
}

Allocation StaticAllocate(std::vector<LockDemand> demands,
                          std::uint32_t switch_capacity,
                          std::uint32_t fixed_slots) {
  NETLOCK_CHECK(fixed_slots >= 1);
  std::sort(demands.begin(), demands.end(),
            [](const LockDemand& a, const LockDemand& b) {
              if (a.rate != b.rate) return a.rate > b.rate;
              return a.lock < b.lock;
            });
  Allocation result;
  std::uint32_t available = switch_capacity;
  for (const LockDemand& d : demands) {
    if (available < fixed_slots) {
      result.server_only.push_back(d.lock);
      continue;
    }
    available -= fixed_slots;
    // The array is fixed_slots big whether the lock needs it or not; only
    // min(fixed, c_i) of it is ever useful.
    result.switch_slots.emplace_back(d.lock, fixed_slots);
    result.guaranteed_rate +=
        d.rate * std::min(fixed_slots, d.contention) / d.contention;
  }
  return result;
}

double AllocationObjective(const std::vector<LockDemand>& demands,
                           const Allocation& allocation) {
  std::unordered_map<LockId, std::uint32_t> slots;
  for (const auto& [lock, s] : allocation.switch_slots) slots[lock] = s;
  double objective = 0.0;
  for (const LockDemand& d : demands) {
    const auto it = slots.find(d.lock);
    if (it == slots.end()) continue;
    objective += d.rate * std::min(it->second, d.contention) / d.contention;
  }
  return objective;
}

namespace {
double BruteForceRec(const std::vector<LockDemand>& demands, std::size_t i,
                     std::uint32_t remaining) {
  if (i == demands.size() || remaining == 0) return 0.0;
  double best = 0.0;
  const LockDemand& d = demands[i];
  const std::uint32_t max_s = std::min(remaining, d.contention);
  for (std::uint32_t s = 0; s <= max_s; ++s) {
    best = std::max(best, d.rate * s / d.contention +
                              BruteForceRec(demands, i + 1, remaining - s));
  }
  return best;
}
}  // namespace

double BruteForceObjective(const std::vector<LockDemand>& demands,
                           std::uint32_t switch_capacity) {
  return BruteForceRec(demands, 0, switch_capacity);
}

std::uint32_t ServersNeeded(const std::vector<LockDemand>& demands,
                            const Allocation& allocation,
                            double server_rate) {
  NETLOCK_CHECK(server_rate > 0.0);
  double total = 0.0;
  for (const LockDemand& d : demands) total += d.rate;
  const double residual = total - AllocationObjective(demands, allocation);
  if (residual <= 0.0) return 0;
  return static_cast<std::uint32_t>(std::ceil(residual / server_rate));
}

}  // namespace netlock
