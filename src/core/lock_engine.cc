#include "core/lock_engine.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

// --- WaitQueue ---

void LockEngine::WaitQueue::Spill(SlabPool& pool) {
  // Only called when the inline ring is full; kInlineSlots <= kChunkSlots,
  // so the whole ring fits the first chunk.
  const std::uint32_t chunk = pool.Alloc();
  Chunk& c = pool.at(chunk);
  for (std::uint32_t i = 0; i < count; ++i) {
    c.slots[i] = inline_slots[(head + i) % kInlineSlots];
  }
  head_chunk = tail_chunk = chunk;
  head = 0;
  tail_off = count;
  spilled = true;
}

void LockEngine::WaitQueue::PushBack(const QueueSlot& slot, SlabPool& pool) {
  if (!spilled) {
    if (count < kInlineSlots) {
      inline_slots[(head + count) % kInlineSlots] = slot;
      ++count;
      return;
    }
    Spill(pool);
  }
  if (tail_off == kChunkSlots) {
    const std::uint32_t chunk = pool.Alloc();
    pool.at(tail_chunk).next = chunk;
    tail_chunk = chunk;
    tail_off = 0;
  }
  pool.at(tail_chunk).slots[tail_off++] = slot;
  ++count;
}

void LockEngine::WaitQueue::PopFront(SlabPool& pool) {
  NETLOCK_CHECK(count > 0);
  --count;
  if (!spilled) {
    head = (head + 1) % kInlineSlots;
    return;
  }
  if (++head == kChunkSlots) {
    const std::uint32_t next = pool.at(head_chunk).next;
    pool.Free(head_chunk);
    head_chunk = next;
    head = 0;
  }
  if (count == 0) {
    // Revert to inline mode so a once-deep queue goes back to the
    // zero-indirection fast path.
    if (head_chunk != kNone) pool.Free(head_chunk);
    head_chunk = tail_chunk = kNone;
    head = 0;
    tail_off = 0;
    spilled = false;
  }
}

void LockEngine::WaitQueue::Reset(SlabPool& pool) {
  std::uint32_t chunk = head_chunk;
  while (chunk != kNone) {
    const std::uint32_t next = pool.at(chunk).next;
    pool.Free(chunk);
    chunk = next;
  }
  count = 0;
  head = 0;
  head_chunk = tail_chunk = kNone;
  tail_off = 0;
  spilled = false;
}

// --- Flat table ---

std::uint32_t LockEngine::Lookup(LockId lock) const {
  if (buckets_.empty()) return kNone;
  const std::size_t mask = buckets_.size() - 1;
  std::size_t i = HashLock(lock) & mask;
  for (;;) {
    const Bucket& b = buckets_[i];
    if (b.state == kEmptySlot) return kNone;
    if (b.state != kTombstone && b.key == lock) return b.state;
    i = (i + 1) & mask;
  }
}

std::uint32_t LockEngine::AllocState() {
  if (!free_states_.empty()) {
    const std::uint32_t idx = free_states_.back();
    free_states_.pop_back();
    LockState& st = states_[idx];
    // Queues were Reset when the state was freed.
    st.xcnt = 0;
    st.paused = false;
    st.req_count = 0;
    st.max_depth = 1;
    return idx;
  }
  states_.emplace_back();
  return static_cast<std::uint32_t>(states_.size() - 1);
}

void LockEngine::FreeState(std::uint32_t idx) {
  LockState& st = states_[idx];
  st.queue.Reset(pool_);
  st.paused_buffer.Reset(pool_);
  st.key = kInvalidLock;
  free_states_.push_back(idx);
}

void LockEngine::Rehash() {
  // Rebuild at load <= 1/4 (grows as needed, also purges tombstones).
  std::size_t cap = 16;
  while (cap < (size_ + 1) * 4) cap <<= 1;
  std::vector<Bucket> fresh(cap);
  const std::size_t mask = cap - 1;
  for (const Bucket& b : buckets_) {
    if (b.state == kEmptySlot || b.state == kTombstone) continue;
    std::size_t i = HashLock(b.key) & mask;
    while (fresh[i].state != kEmptySlot) i = (i + 1) & mask;
    fresh[i] = b;
  }
  buckets_ = std::move(fresh);
  tombstones_ = 0;
}

LockEngine::LockState& LockEngine::FindOrCreate(LockId lock) {
  if (buckets_.empty() || (size_ + tombstones_ + 1) * 2 > buckets_.size()) {
    Rehash();
  }
  const std::size_t npos = static_cast<std::size_t>(-1);
  const std::size_t mask = buckets_.size() - 1;
  std::size_t i = HashLock(lock) & mask;
  std::size_t first_tomb = npos;
  for (;;) {
    Bucket& b = buckets_[i];
    if (b.state == kEmptySlot) {
      const std::size_t target = first_tomb != npos ? first_tomb : i;
      if (first_tomb != npos) --tombstones_;
      const std::uint32_t idx = AllocState();
      states_[idx].key = lock;
      buckets_[target].key = lock;
      buckets_[target].state = idx;
      ++size_;
      return states_[idx];
    }
    if (b.state == kTombstone) {
      if (first_tomb == npos) first_tomb = i;
    } else if (b.key == lock) {
      return states_[b.state];
    }
    i = (i + 1) & mask;
  }
}

void LockEngine::Erase(LockId lock) {
  if (buckets_.empty()) return;
  const std::size_t mask = buckets_.size() - 1;
  std::size_t i = HashLock(lock) & mask;
  for (;;) {
    Bucket& b = buckets_[i];
    if (b.state == kEmptySlot) return;
    if (b.state != kTombstone && b.key == lock) {
      FreeState(b.state);
      b.state = kTombstone;
      --size_;
      ++tombstones_;
      return;
    }
    i = (i + 1) & mask;
  }
}

// --- Protocol ---

std::uint32_t LockEngine::GrantedCount(LockState& st) {
  if (st.queue.empty()) return 0;
  if (st.queue.Front(pool_).mode == LockMode::kExclusive) return 1;
  std::uint32_t granted = 0;
  for (auto cur = st.queue.Begin(); !st.queue.Done(cur);
       st.queue.Advance(cur, pool_)) {
    if (st.queue.At(cur, pool_).mode == LockMode::kExclusive) break;
    ++granted;
  }
  return granted;
}

bool LockEngine::AnyConflict(LockState& st, const QueueSlot& slot) {
  for (auto cur = st.queue.Begin(); !st.queue.Done(cur);
       st.queue.Advance(cur, pool_)) {
    if (Conflicts(st.queue.At(cur, pool_), slot)) return true;
  }
  return false;
}

bool LockEngine::ConflictsWithOlder(LockState& st, const QueueSlot& slot) {
  for (auto cur = st.queue.Begin(); !st.queue.Done(cur);
       st.queue.Advance(cur, pool_)) {
    const QueueSlot& entry = st.queue.At(cur, pool_);
    if (entry.txn_id < slot.txn_id && Conflicts(entry, slot)) return true;
  }
  return false;
}

LockEngine::RemoveResult LockEngine::RemoveMatching(
    LockId lock, LockState& st, WaitQueue& q, bool active, TxnId txn,
    const QueueSlot* wound_against, SimTime now, bool notify,
    AbortReason reason) {
  RemoveResult result;
  // Granted entries surviving so far are exactly the first `granted_now`
  // entries (the granted prefix shrinks monotonically during removal and
  // survivors keep their relative order).
  std::uint32_t granted_now = active ? GrantedCount(st) : 0;
  for (;;) {
    // Find the first matching entry.
    std::uint32_t pos = 0;
    bool found = false;
    for (auto cur = q.Begin(); !q.Done(cur); q.Advance(cur, pool_), ++pos) {
      const QueueSlot& entry = q.At(cur, pool_);
      const bool match =
          wound_against != nullptr
              ? (entry.txn_id > wound_against->txn_id &&
                 Conflicts(entry, *wound_against))
              : entry.txn_id == txn;
      if (match) {
        found = true;
        break;
      }
    }
    if (!found) break;
    // Remove position `pos` by rotating [0, pos) one slot towards the
    // tail and popping the (now duplicated) front — reuses PopFront's
    // chunk-free/inline-revert logic and preserves FIFO order.
    QueueSlot victim;
    if (pos == 0) {
      victim = q.Front(pool_);
    } else {
      auto cur = q.Begin();
      QueueSlot carry = q.At(cur, pool_);
      for (std::uint32_t i = 1; i <= pos; ++i) {
        q.Advance(cur, pool_);
        std::swap(carry, q.At(cur, pool_));
      }
      victim = carry;
    }
    q.PopFront(pool_);
    ++result.removed;
    if (active) {
      if (victim.mode == LockMode::kExclusive) {
        NETLOCK_CHECK(st.xcnt > 0);
        --st.xcnt;
      }
      if (pos < granted_now) {
        --granted_now;
        ++result.removed_granted;
      }
    }
    if (notify) sink_.DeliverAbort(lock, victim, reason);
  }
  if (!active || result.removed == 0) return result;
  // Re-grant whatever the removals promoted into the granted prefix:
  // positions [granted_now, GrantedCount) are newly granted.
  const std::uint32_t target = GrantedCount(st);
  std::uint32_t pos = 0;
  for (auto cur = q.Begin(); !q.Done(cur) && pos < target;
       q.Advance(cur, pool_), ++pos) {
    if (pos < granted_now) continue;
    QueueSlot& entry = q.At(cur, pool_);
    sink_.OnWaitEnd(lock, entry, now);
    entry.timestamp = now;
    sink_.DeliverGrant(lock, entry);
  }
  return result;
}

LockEngine::RemoveResult LockEngine::RemoveTxn(LockId lock, TxnId txn,
                                               SimTime now, bool notify,
                                               AbortReason reason) {
  const std::uint32_t idx = Lookup(lock);
  if (idx == kNone) return {};
  LockState& st = states_[idx];
  RemoveResult result = RemoveMatching(lock, st, st.queue, /*active=*/true,
                                       txn, nullptr, now, notify, reason);
  const RemoveResult parked =
      RemoveMatching(lock, st, st.paused_buffer, /*active=*/false, txn,
                     nullptr, now, notify, reason);
  result.removed += parked.removed;
  return result;
}

void LockEngine::Acquire(LockId lock, QueueSlot slot, SimTime now) {
  LockState& st = FindOrCreate(lock);
  ++st.req_count;
  slot.timestamp = now;

  if (st.paused) {
    st.paused_buffer.PushBack(slot, pool_);
    return;
  }
  if (policy_ != DeadlockPolicy::kNone && !st.queue.empty()) {
    switch (policy_) {
      case DeadlockPolicy::kNoWait:
        if (AnyConflict(st, slot)) {
          sink_.DeliverAbort(lock, slot, AbortReason::kNoWait);
          return;
        }
        break;
      case DeadlockPolicy::kWaitDie:
        // Wait only behind younger conflicting entries; die if any
        // conflicting entry is older. Waits-for edges then always point
        // old -> young, and ages are totally ordered, so no cycle forms.
        if (ConflictsWithOlder(st, slot)) {
          sink_.DeliverAbort(lock, slot, AbortReason::kWaitDie);
          return;
        }
        break;
      case DeadlockPolicy::kWoundWait:
        // Revoke every younger conflicting entry (waiting or granted),
        // then queue: the survivors ahead are all older, so waits-for
        // edges point young -> old. The wounds' DeliverAbort fires before
        // RemoveMatching's re-grants, so observers see abort-then-grant.
        RemoveMatching(lock, st, st.queue, /*active=*/true, kInvalidTxn,
                       &slot, now, /*notify=*/true, AbortReason::kWound);
        break;
      default:
        break;
    }
  }
  const bool was_empty = st.queue.empty();
  const bool all_shared = st.xcnt == 0;
  st.queue.PushBack(slot, pool_);
  st.max_depth = std::max(st.max_depth, st.queue.count);
  if (slot.mode == LockMode::kExclusive) ++st.xcnt;
  if (was_empty || (all_shared && slot.mode == LockMode::kShared)) {
    sink_.DeliverGrant(lock, slot);
  }
}

ReleaseOutcome LockEngine::Release(LockId lock, LockMode mode, TxnId txn,
                                   bool lease_forced, SimTime now) {
  const std::uint32_t idx = Lookup(lock);
  if (idx == kNone || states_[idx].queue.empty()) {
    return ReleaseOutcome::kStale;
  }
  LockState& st = states_[idx];
  const QueueSlot released = st.queue.Front(pool_);
  if (!lease_forced &&
      (released.mode != mode ||
       (mode == LockMode::kExclusive && released.txn_id != txn))) {
    return ReleaseOutcome::kMismatched;
  }
  if (!lease_forced && policy_ != DeadlockPolicy::kNone &&
      mode == LockMode::kShared && released.txn_id != txn) {
    // Under a deadlock policy the queue's txn labels are load-bearing:
    // wound targets and age checks read them. The blind shared pop (fine
    // under kNone, where granted shared entries are interchangeable) would
    // leave an entry labeled with a txn that already released, and a later
    // wound then removes the wrong holder's entry. Remove the releaser's
    // own entry from the granted shared run instead; if it is absent the
    // release crossed a wound in flight and must not pop anyone.
    std::uint32_t pos = 0;
    bool found = false;
    for (auto cur = st.queue.Begin(); !st.queue.Done(cur);
         st.queue.Advance(cur, pool_), ++pos) {
      const QueueSlot& entry = st.queue.At(cur, pool_);
      if (entry.mode != LockMode::kShared) break;
      if (entry.txn_id == txn) {
        found = true;
        break;
      }
    }
    if (!found) return ReleaseOutcome::kStale;
    if (pos > 0) {
      // Rotate [0, pos) one slot towards the tail so the victim surfaces
      // at the front (same trick as RemoveMatching), then fall through to
      // the common PopFront + cascade below.
      auto cur = st.queue.Begin();
      QueueSlot carry = st.queue.At(cur, pool_);
      for (std::uint32_t i = 1; i <= pos; ++i) {
        st.queue.Advance(cur, pool_);
        std::swap(carry, st.queue.At(cur, pool_));
      }
    }
  }
  st.queue.PopFront(pool_);
  if (released.mode == LockMode::kExclusive) {
    NETLOCK_CHECK(st.xcnt > 0);
    --st.xcnt;
  }
  if (st.queue.empty()) return ReleaseOutcome::kApplied;
  // Same four-case cascade as the switch (Algorithm 2). Grants re-stamp
  // the entry so the lease measures holding time, not queueing time; the
  // wait span is emitted (OnWaitEnd) before the re-stamp erases the
  // enqueue time.
  if (st.queue.Front(pool_).mode == LockMode::kExclusive) {
    QueueSlot& head = st.queue.Front(pool_);
    sink_.OnWaitEnd(lock, head, now);
    head.timestamp = now;
    sink_.DeliverGrant(lock, head);  // S->E and E->E.
    return ReleaseOutcome::kApplied;
  }
  if (released.mode == LockMode::kShared) {
    return ReleaseOutcome::kApplied;  // S->S: already granted.
  }
  // E->S: grant consecutive shared requests.
  for (auto cur = st.queue.Begin(); !st.queue.Done(cur);
       st.queue.Advance(cur, pool_)) {
    QueueSlot& slot = st.queue.At(cur, pool_);
    if (slot.mode == LockMode::kExclusive) break;
    sink_.OnWaitEnd(lock, slot, now);
    slot.timestamp = now;
    sink_.DeliverGrant(lock, slot);
  }
  return ReleaseOutcome::kApplied;
}

std::uint64_t LockEngine::ClearExpired(SimTime lease, SimTime now) {
  if (now < lease) return 0;
  const SimTime cutoff = now - lease;
  std::uint64_t forced = 0;
  // Release never inserts or erases states, so iterating the pool while
  // force-releasing is safe.
  for (LockState& st : states_) {
    if (st.key == kInvalidLock) continue;
    while (!st.queue.empty() && st.queue.Front(pool_).timestamp <= cutoff) {
      const LockMode mode = st.queue.Front(pool_).mode;
      const ReleaseOutcome outcome =
          Release(st.key, mode, kInvalidTxn, /*lease_forced=*/true, now);
      NETLOCK_CHECK(outcome == ReleaseOutcome::kApplied);
      ++forced;
    }
  }
  return forced;
}

bool LockEngine::QueueEmpty(LockId lock) const {
  const std::uint32_t idx = Lookup(lock);
  return idx == kNone || states_[idx].queue.empty();
}

std::size_t LockEngine::QueueDepth(LockId lock) const {
  const std::uint32_t idx = Lookup(lock);
  return idx == kNone ? 0 : states_[idx].queue.size();
}

std::size_t LockEngine::TotalQueueDepth() const {
  std::size_t total = 0;
  for (const LockState& st : states_) {
    if (st.key == kInvalidLock) continue;
    total += st.queue.size() + st.paused_buffer.size();
  }
  return total;
}

void LockEngine::SetPaused(LockId lock, bool paused) {
  FindOrCreate(lock).paused = paused;
}

bool LockEngine::IsPaused(LockId lock) const {
  const std::uint32_t idx = Lookup(lock);
  return idx != kNone && states_[idx].paused;
}

std::deque<QueueSlot> LockEngine::TakePausedBuffer(LockId lock) {
  const std::uint32_t idx = Lookup(lock);
  if (idx == kNone) return {};
  LockState& st = states_[idx];
  std::deque<QueueSlot> buffer;
  while (!st.paused_buffer.empty()) {
    buffer.push_back(st.paused_buffer.Front(pool_));
    st.paused_buffer.PopFront(pool_);
  }
  return buffer;
}

void LockEngine::AdoptQueue(LockId lock, std::deque<QueueSlot> queue,
                            SimTime now) {
  LockState& st = FindOrCreate(lock);
  NETLOCK_CHECK(st.queue.empty());
  for (const QueueSlot& slot : queue) {
    st.queue.PushBack(slot, pool_);
    if (slot.mode == LockMode::kExclusive) ++st.xcnt;
  }
  if (st.queue.empty()) return;
  if (st.queue.Front(pool_).mode == LockMode::kExclusive) {
    QueueSlot& head = st.queue.Front(pool_);
    head.timestamp = now;
    sink_.DeliverGrant(lock, head);
    return;
  }
  for (auto cur = st.queue.Begin(); !st.queue.Done(cur);
       st.queue.Advance(cur, pool_)) {
    QueueSlot& slot = st.queue.At(cur, pool_);
    if (slot.mode == LockMode::kExclusive) break;
    slot.timestamp = now;
    sink_.DeliverGrant(lock, slot);
  }
}

void LockEngine::Drop(LockId lock) { Erase(lock); }

void LockEngine::DropDrained(LockId lock) {
  const std::uint32_t idx = Lookup(lock);
  if (idx == kNone) return;
  NETLOCK_CHECK(states_[idx].queue.empty());
  NETLOCK_CHECK(states_[idx].paused_buffer.empty());
  Erase(lock);
}

void LockEngine::Clear() {
  buckets_.clear();
  states_.clear();
  free_states_.clear();
  pool_.Clear();
  size_ = 0;
  tombstones_ = 0;
}

std::vector<LockId> LockEngine::OwnedLocks() const {
  std::vector<LockId> locks;
  locks.reserve(size_);
  for (const LockState& st : states_) {
    if (st.key != kInvalidLock) locks.push_back(st.key);
  }
  return locks;
}

void LockEngine::HarvestDemands(double window_sec,
                                std::vector<LockDemand>& out) {
  NETLOCK_CHECK(window_sec > 0.0);
  for (LockState& st : states_) {
    if (st.key == kInvalidLock || st.req_count == 0) continue;
    out.push_back(LockDemand{
        st.key, static_cast<double>(st.req_count) / window_sec,
        std::max(1u, st.max_depth)});
    st.req_count = 0;
    st.max_depth = std::max(1u, st.queue.count);
  }
}

}  // namespace netlock
