#include "core/lock_engine.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

void LockEngine::Acquire(LockId lock, QueueSlot slot, SimTime now) {
  OwnedLock& owned = owned_[lock];
  ++owned.req_count;
  slot.timestamp = now;

  if (owned.paused) {
    owned.paused_buffer.push_back(slot);
    return;
  }
  const bool was_empty = owned.queue.empty();
  const bool all_shared = owned.xcnt == 0;
  owned.queue.push_back(slot);
  owned.max_depth = std::max(
      owned.max_depth, static_cast<std::uint32_t>(owned.queue.size()));
  if (slot.mode == LockMode::kExclusive) ++owned.xcnt;
  if (was_empty || (all_shared && slot.mode == LockMode::kShared)) {
    sink_.DeliverGrant(lock, slot);
  }
}

ReleaseOutcome LockEngine::Release(LockId lock, LockMode mode, TxnId txn,
                                   bool lease_forced, SimTime now) {
  const auto it = owned_.find(lock);
  if (it == owned_.end() || it->second.queue.empty()) {
    return ReleaseOutcome::kStale;
  }
  OwnedLock& owned = it->second;
  const QueueSlot released = owned.queue.front();
  if (!lease_forced &&
      (released.mode != mode ||
       (mode == LockMode::kExclusive && released.txn_id != txn))) {
    return ReleaseOutcome::kMismatched;
  }
  owned.queue.pop_front();
  if (released.mode == LockMode::kExclusive) {
    NETLOCK_CHECK(owned.xcnt > 0);
    --owned.xcnt;
  }
  if (owned.queue.empty()) return ReleaseOutcome::kApplied;
  // Same four-case cascade as the switch (Algorithm 2). Grants re-stamp
  // the entry so the lease measures holding time, not queueing time; the
  // wait span is emitted (OnWaitEnd) before the re-stamp erases the
  // enqueue time.
  if (owned.queue.front().mode == LockMode::kExclusive) {
    QueueSlot& head = owned.queue.front();
    sink_.OnWaitEnd(lock, head, now);
    head.timestamp = now;
    sink_.DeliverGrant(lock, head);  // S->E and E->E.
    return ReleaseOutcome::kApplied;
  }
  if (released.mode == LockMode::kShared) {
    return ReleaseOutcome::kApplied;  // S->S: already granted.
  }
  // E->S: grant consecutive shared requests.
  for (QueueSlot& slot : owned.queue) {
    if (slot.mode == LockMode::kExclusive) break;
    sink_.OnWaitEnd(lock, slot, now);
    slot.timestamp = now;
    sink_.DeliverGrant(lock, slot);
  }
  return ReleaseOutcome::kApplied;
}

std::uint64_t LockEngine::ClearExpired(SimTime lease, SimTime now) {
  if (now < lease) return 0;
  const SimTime cutoff = now - lease;
  std::uint64_t forced = 0;
  for (auto& [lock, owned] : owned_) {
    while (!owned.queue.empty() &&
           owned.queue.front().timestamp <= cutoff) {
      const LockMode mode = owned.queue.front().mode;
      const ReleaseOutcome outcome =
          Release(lock, mode, kInvalidTxn, /*lease_forced=*/true, now);
      NETLOCK_CHECK(outcome == ReleaseOutcome::kApplied);
      ++forced;
    }
  }
  return forced;
}

bool LockEngine::QueueEmpty(LockId lock) const {
  const auto it = owned_.find(lock);
  return it == owned_.end() || it->second.queue.empty();
}

std::size_t LockEngine::QueueDepth(LockId lock) const {
  const auto it = owned_.find(lock);
  return it == owned_.end() ? 0 : it->second.queue.size();
}

std::size_t LockEngine::TotalQueueDepth() const {
  std::size_t total = 0;
  for (const auto& [lock, owned] : owned_) {
    total += owned.queue.size() + owned.paused_buffer.size();
  }
  return total;
}

void LockEngine::SetPaused(LockId lock, bool paused) {
  owned_[lock].paused = paused;
}

bool LockEngine::IsPaused(LockId lock) const {
  const auto it = owned_.find(lock);
  return it != owned_.end() && it->second.paused;
}

std::deque<QueueSlot> LockEngine::TakePausedBuffer(LockId lock) {
  const auto it = owned_.find(lock);
  if (it == owned_.end()) return {};
  std::deque<QueueSlot> buffer;
  buffer.swap(it->second.paused_buffer);
  return buffer;
}

void LockEngine::AdoptQueue(LockId lock, std::deque<QueueSlot> queue,
                            SimTime now) {
  OwnedLock& owned = owned_[lock];
  NETLOCK_CHECK(owned.queue.empty());
  owned.queue = std::move(queue);
  for (const QueueSlot& slot : owned.queue) {
    if (slot.mode == LockMode::kExclusive) ++owned.xcnt;
  }
  if (owned.queue.empty()) return;
  if (owned.queue.front().mode == LockMode::kExclusive) {
    owned.queue.front().timestamp = now;
    sink_.DeliverGrant(lock, owned.queue.front());
    return;
  }
  for (QueueSlot& slot : owned.queue) {
    if (slot.mode == LockMode::kExclusive) break;
    slot.timestamp = now;
    sink_.DeliverGrant(lock, slot);
  }
}

void LockEngine::DropDrained(LockId lock) {
  const auto it = owned_.find(lock);
  if (it == owned_.end()) return;
  NETLOCK_CHECK(it->second.queue.empty());
  NETLOCK_CHECK(it->second.paused_buffer.empty());
  owned_.erase(it);
}

std::vector<LockId> LockEngine::OwnedLocks() const {
  std::vector<LockId> locks;
  locks.reserve(owned_.size());
  for (const auto& [lock, state] : owned_) locks.push_back(lock);
  return locks;
}

void LockEngine::HarvestDemands(double window_sec,
                                std::vector<LockDemand>& out) {
  NETLOCK_CHECK(window_sec > 0.0);
  for (auto& [lock, owned] : owned_) {
    if (owned.req_count == 0) continue;
    out.push_back(LockDemand{
        lock, static_cast<double>(owned.req_count) / window_sec,
        std::max(1u, owned.max_depth)});
    owned.req_count = 0;
    owned.max_depth =
        std::max(1u, static_cast<std::uint32_t>(owned.queue.size()));
  }
}

}  // namespace netlock
