// Self-driving control plane: continuous demand-tracking reallocation.
//
// The paper's control plane (Section 4.3) solves the knapsack once; this
// module closes the loop. Every `interval` the controller harvests the
// per-window demand counters (ControlPlane::CombinedDemands), folds them
// into an EWMA model, incrementally re-solves the allocation seeded from
// what is installed (IncrementalKnapsack — the POP trace-tree idiom:
// recompute only the slice whose demand moved), and issues
// ApplyAllocation / RehomeLock migrations. Three dampers keep it from
// thrashing on a stationary workload:
//
//   * hysteresis — EWMA-smoothed rates plus an incumbency boost: a
//     challenger must beat an installed lock's density by a margin to
//     displace it, and an incumbent is demoted only when it falls below
//     the matching eviction threshold;
//   * dwell — a lock that just migrated is frozen (kept where it is, in
//     or out) for `min_dwell`, and each tick moves at most
//     `migration_budget` locks;
//   * a migration-cost model — a promotion runs only when the request
//     rate it would shift onto the switch over `payback_horizon` exceeds
//     the drain cost (current server queue depth x per-entry cost plus a
//     fixed pause/install charge).
//
// Every decision is counted under "ctrl.*" in the MetricsRegistry, so the
// TimeSeriesSampler can chart controller activity next to the data plane.
//
// Substrate split: ControllerCore (model + planner) is pure and clocked by
// the caller — the simulator-driven SelfDrivingController here, or a
// WallClockTicker thread for the real-time backend, which has no event
// queue to hook (mirrors RtStatsPoller).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/memory_alloc.h"
#include "core/sharding.h"
#include "sim/simulator.h"

namespace netlock {

struct ControllerConfig {
  /// Harvest-and-replan period.
  SimTime interval = 5 * kMillisecond;
  /// Observe-only ticks before the first migration: the EWMA needs a few
  /// windows before its rates mean anything.
  int warmup_ticks = 3;
  /// EWMA weight of the newest window (1.0 = no smoothing).
  double ewma_alpha = 0.5;
  /// Model entries whose smoothed rate decays below this are dropped.
  double rate_floor = 1.0;
  /// A migrated lock is frozen in place for this long (hysteresis dwell).
  SimTime min_dwell = 20 * kMillisecond;
  /// Max switch<->server moves per tick (a resize counts as two).
  int migration_budget = 16;
  /// IncrementalKnapsack hysteresis (see IncrementalPolicy).
  double incumbent_boost = 1.3;
  std::uint32_t min_resize_delta = 2;
  /// Cost model: a promotion must shift at least as many requests onto the
  /// switch over this horizon as the migration costs.
  double payback_horizon_sec = 0.05;
  /// Cost per entry queued at the server when the drain starts (each is a
  /// request the pause delays) ...
  double drain_cost_per_entry = 2.0;
  /// ... plus a fixed pause/install charge, in request-equivalents.
  double fixed_migration_cost = 8.0;
  /// Multi-rack: re-home the hottest lock off a rack whose smoothed demand
  /// exceeds `rack_imbalance_factor` x the mean. <= 1 disables.
  double rack_imbalance_factor = 1.5;
  int max_rehomes_per_tick = 1;
};

/// Decision counters, mirrored 1:1 into "ctrl.*" registry counters.
struct ControllerStats {
  std::uint64_t ticks = 0;
  std::uint64_t reallocs = 0;    ///< Ticks that issued an ApplyAllocation.
  std::uint64_t promotions = 0;  ///< Locks moved server -> switch.
  std::uint64_t demotions = 0;   ///< Locks moved switch -> server.
  std::uint64_t resizes = 0;     ///< Installed locks re-sized.
  std::uint64_t rehomes = 0;     ///< Cross-rack migrations issued.
  std::uint64_t skipped_busy = 0;    ///< Ticks with a batch still draining.
  std::uint64_t skipped_dwell = 0;   ///< Moves frozen by min_dwell.
  std::uint64_t skipped_cost = 0;    ///< Promotions failing the cost model.
  std::uint64_t skipped_budget = 0;  ///< Moves beyond migration_budget.
};

/// EWMA demand model + incremental planner. Pure: no clock, no I/O — the
/// driver feeds it harvested windows and asks for a plan. One instance per
/// rack (demand windows are per control plane).
class ControllerCore {
 public:
  explicit ControllerCore(const ControllerConfig& config);

  /// Folds one harvested window into the EWMA model. `incumbents` marks
  /// which locks are currently switch-resident (they decay instead of
  /// vanishing when a window misses them). Entries below rate_floor drop.
  void Observe(const std::vector<LockDemand>& window,
               const Allocation& installed);

  /// The planner's one step: re-solve incrementally from `installed` and
  /// return the damped target. `queue_depth(lock)` feeds the cost model
  /// (entries waiting at the lock's server). Updates per-lock dwell stamps
  /// for every move the plan keeps and accumulates skip counters into
  /// `stats`. Returns true when `target` differs from `installed`.
  bool Plan(const Allocation& installed, std::uint32_t capacity, SimTime now,
            const std::function<std::size_t(LockId)>& queue_depth,
            Allocation* target, ControllerStats* stats);

  /// Smoothed per-lock demands, sorted by lock id (the dirty slice).
  std::vector<LockDemand> SmoothedDemands() const;
  /// Sum of smoothed rates (rack load, for the re-home balancer).
  double TotalRate() const;
  /// Hottest eligible lock by smoothed rate, skipping frozen locks;
  /// false if none qualifies.
  bool HottestUnfrozen(SimTime now, const std::function<bool(LockId)>& eligible,
                       LockId* lock) const;
  /// Stamps a lock's dwell clock (used for cross-rack re-homes too).
  void MarkMoved(LockId lock, SimTime now);
  bool Frozen(LockId lock, SimTime now) const;

 private:
  struct Entry {
    double rate = 0.0;        ///< EWMA of the windowed request rate.
    double contention = 1.0;  ///< EWMA of the contention counter.
  };

  ControllerConfig config_;
  /// Ordered so every iteration (slice build, hottest pick) is
  /// deterministic regardless of observation order.
  std::map<LockId, Entry> model_;
  std::map<LockId, SimTime> last_move_;
};

/// The simulator-clocked driver: one ControllerCore per rack, ticking on
/// sim.Schedule. Construct after the topology, Start() once engines run.
class SelfDrivingController {
 public:
  SelfDrivingController(Simulator& sim, ShardedNetLock& sharded,
                        ControllerConfig config = ControllerConfig{});
  ~SelfDrivingController();  // Out-of-line: CtrlMetrics is incomplete here.

  void Start();
  /// Stops future ticks (in-flight migrations finish on their own).
  void Stop();

  bool running() const { return running_; }
  const ControllerConfig& config() const { return config_; }
  /// Aggregate decision counters across racks (also in "ctrl.*").
  const ControllerStats& stats() const { return stats_; }
  ControllerCore& core(int rack) { return *cores_[rack]; }

 private:
  void Tick();
  void TickRack(int rack);
  void BalanceRacks();

  Simulator& sim_;
  ShardedNetLock& sharded_;
  ControllerConfig config_;
  std::vector<std::unique_ptr<ControllerCore>> cores_;
  std::vector<int> warmup_left_;
  ControllerStats stats_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  ///< Invalidates scheduled ticks on Stop.

  struct CtrlMetrics;
  std::unique_ptr<CtrlMetrics> metrics_;
};

/// Wall-clock tick driver for the real-time backend (no simulator event
/// queue to hook): runs `tick` every `interval` on a background thread,
/// exactly like RtStatsPoller's sampling loop. The rt harness points it at
/// a ControllerCore fed from its telemetry domains.
class WallClockTicker {
 public:
  WallClockTicker(std::chrono::nanoseconds interval,
                  std::function<void()> tick);
  ~WallClockTicker();

  WallClockTicker(const WallClockTicker&) = delete;
  WallClockTicker& operator=(const WallClockTicker&) = delete;

  void Start();
  void Stop();
  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  std::chrono::nanoseconds interval_;
  std::function<void()> tick_;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace netlock
