// NetLockManager: the public facade tying together one lock switch, a set
// of lock servers, and the control plane — one NetLock instance for one
// database rack (paper Figure 2).
//
// Typical use (see examples/quickstart.cc):
//
//   Simulator sim;
//   Network net(sim, /*latency=*/1100);
//   NetLockManager manager(net, NetLockOptions{});
//   manager.InstallAllocation(KnapsackAllocate(demands, slots));
//   ClientMachine machine(net);
//   auto session = manager.CreateSession(machine, /*tenant=*/0);
//   session->Acquire(lock, LockMode::kExclusive, txn, 0, on_granted);
#pragma once

#include <memory>
#include <vector>

#include "client/client.h"
#include "core/control_plane.h"
#include "core/memory_alloc.h"
#include "dataplane/switch_dataplane.h"
#include "server/lock_server.h"
#include "sim/network.h"

namespace netlock {

struct NetLockOptions {
  LockSwitchConfig switch_config;
  LockServerConfig server_config;
  int num_servers = 2;
  ControlPlaneConfig control_config;
  /// Client session defaults (switch_node is filled in by CreateSession).
  SimTime client_retry_timeout = 5 * kMillisecond;
  int client_max_retries = 16;
  /// Lease discipline (see NetLockSession::Config): sessions stop sending
  /// releases for grants older than `lease - margin`, since the lease
  /// sweep may already have force-released the entry. Defaults mirror the
  /// control plane's lease with a margin that covers two one-way trips.
  SimTime client_lease = 50 * kMillisecond;
  SimTime client_lease_release_margin = 100 * kMicrosecond;
};

class NetLockManager {
 public:
  NetLockManager(Network& net, NetLockOptions options = NetLockOptions{});

  /// Installs a memory allocation and starts lease polling.
  void InstallAllocation(const Allocation& allocation);

  /// Convenience: compute Algorithm 3's allocation over `demands` for the
  /// configured switch queue capacity and install it.
  void InstallKnapsack(const std::vector<LockDemand>& demands);

  /// Creates a client session bound to `machine`.
  std::unique_ptr<LockSession> CreateSession(ClientMachine& machine,
                                             TenantId tenant = 0);

  LockSwitch& lock_switch() { return *switch_; }
  ControlPlane& control_plane() { return *control_; }
  const NetLockOptions& options() const { return options_; }
  LockServer& server(int i) { return *servers_[i]; }
  int num_servers() const { return static_cast<int>(servers_.size()); }

  /// Grants served by the switch data plane vs by lock servers — the split
  /// Figure 13(a) plots.
  std::uint64_t SwitchGrants() const { return switch_->stats().grants; }
  std::uint64_t ServerGrants() const;

 private:
  Network& net_;
  NetLockOptions options_;
  std::unique_ptr<LockSwitch> switch_;
  std::vector<std::unique_ptr<LockServer>> servers_;
  std::unique_ptr<ControlPlane> control_;
};

}  // namespace netlock
