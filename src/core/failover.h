// Backup-switch failover (paper Section 4.5, "NetLock failure").
//
// "A switch failure is handled ... by assigning the locks to a backup
//  switch. ... After the original switch restarts, the lock requests are
//  queued into the original switch. When releasing a lock, we only grant
//  locks from the backup switch until the queue in the backup switch gets
//  empty."
//
// Orchestration implemented here:
//
//  FailPrimary():
//    1. The primary stops (registers lost).
//    2. The allocation is installed on the backup in *suspended* mode
//       (queue-but-don't-grant) and clients are re-pointed to it. Requests
//       queue up immediately; nothing is granted yet.
//    3. After one lease, every pre-failure grant has expired, so the
//       backup's locks are activated one by one — no grant can ever
//       overlap a pre-failure holder.
//
//  RecoverPrimary():
//    4. The primary restarts with the allocation installed *suspended* and
//       new requests go to it (clients re-pointed); releases route to the
//       switch that granted each lock (the backup), which keeps granting
//       from its queues.
//    5. As each backup lock queue drains, the corresponding primary lock
//       is activated — single-queue order is preserved per lock.
//    6. When the backup is fully drained it is wiped and becomes a cold
//       standby again.
#pragma once

#include <functional>
#include <vector>

#include "client/client.h"
#include "core/control_plane.h"
#include "dataplane/switch_dataplane.h"
#include "sim/simulator.h"

namespace netlock {

struct FailoverConfig {
  /// Poll interval for drain/activation progress.
  SimTime poll_interval = kMillisecond;
};

class FailoverManager {
 public:
  /// `control` is the primary's control plane (it owns the installed
  /// allocation and the lock servers).
  FailoverManager(Simulator& sim, LockSwitch& primary, LockSwitch& backup,
                  ControlPlane& control,
                  FailoverConfig config = FailoverConfig{});

  /// Sessions registered here are re-pointed on failover/recovery (models
  /// the datacenter routing update that redirects the NetLock service
  /// address).
  void RegisterSession(NetLockSession* session);

  /// The switch new acquires currently target.
  NodeId active_switch() const;

  /// True while the backup is serving (possibly concurrently with a
  /// recovering primary that is still suspended).
  bool backup_active() const { return backup_active_; }

  /// Fails the primary over to the backup (steps 1-3 above).
  void FailPrimary();

  /// Restarts the primary and drains the backup (steps 4-6). `done` fires
  /// when the backup is empty and wiped.
  void RecoverPrimary(std::function<void()> done = nullptr);

 private:
  void ActivateBackupLocks();
  void PollRecovery(std::function<void()> done);
  void RepointSessions(NodeId node);
  void SweepBackupLeases();

  Simulator& sim_;
  LockSwitch& primary_;
  LockSwitch& backup_;
  ControlPlane& control_;
  FailoverConfig config_;
  std::vector<NetLockSession*> sessions_;
  bool backup_active_ = false;
  bool primary_failed_ = false;
  std::uint64_t epoch_ = 0;  // Invalidates stale scheduled callbacks.
};

}  // namespace netlock
