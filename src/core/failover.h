// Backup-switch failover (paper Section 4.5, "NetLock failure").
//
// "A switch failure is handled ... by assigning the locks to a backup
//  switch. ... After the original switch restarts, the lock requests are
//  queued into the original switch. When releasing a lock, we only grant
//  locks from the backup switch until the queue in the backup switch gets
//  empty."
//
// Orchestration implemented here:
//
//  FailPrimary():
//    1. The primary stops (registers lost).
//    2. The allocation is installed on the backup in *suspended* mode
//       (queue-but-don't-grant) and clients are re-pointed to it. Requests
//       queue up immediately; nothing is granted yet.
//    3. After one lease, every pre-failure grant has expired, so the
//       backup's locks are activated one by one — no grant can ever
//       overlap a pre-failure holder.
//
//  RecoverPrimary():
//    4. The primary restarts with the allocation installed *suspended* and
//       new requests go to it (clients re-pointed); releases route to the
//       switch that granted each lock (the backup), which keeps granting
//       from its queues.
//    5. As each backup lock queue drains, the corresponding primary lock
//       is activated — single-queue order is preserved per lock.
//    6. When the backup is fully drained it is wiped and becomes a cold
//       standby again.
#pragma once

#include <functional>
#include <unordered_set>
#include <vector>

#include "client/client.h"
#include "core/control_plane.h"
#include "dataplane/switch_dataplane.h"
#include "sim/simulator.h"

namespace netlock {

struct FailoverConfig {
  /// Poll interval for drain/activation progress.
  SimTime poll_interval = kMillisecond;
};

class FailoverManager {
 public:
  /// `control` is the primary's control plane (it owns the installed
  /// allocation and the lock servers).
  FailoverManager(Simulator& sim, LockSwitch& primary, LockSwitch& backup,
                  ControlPlane& control,
                  FailoverConfig config = FailoverConfig{});

  /// Sessions registered here are re-pointed on failover/recovery (models
  /// the datacenter routing update that redirects the NetLock service
  /// address).
  void RegisterSession(NetLockSession* session);

  /// The switch new acquires currently target.
  NodeId active_switch() const;

  /// True while the backup is serving (possibly concurrently with a
  /// recovering primary that is still suspended).
  bool backup_active() const { return backup_active_; }

  /// Drain progress: locks whose grant stream has moved back to the
  /// recovered primary. Non-zero only mid-drain (cleared when the drain
  /// completes or a second failure re-suspends them).
  std::size_t locks_returned() const { return returned_to_primary_.size(); }

  /// Fails the primary over to the backup (steps 1-3 above). May be called
  /// again after RecoverPrimary, including while the backup is still
  /// draining from the previous failover: locks already returned to the
  /// primary are re-suspended on the backup for one lease (the primary's
  /// fresh grants must expire first); locks still draining keep granting —
  /// their grant stream never moved back, so per-lock order holds.
  void FailPrimary();

  /// Restarts the primary and drains the backup (steps 4-6). `done` fires
  /// when the backup is empty and wiped; it never fires if the primary
  /// fails again before the drain completes (the new failover supersedes
  /// this recovery).
  void RecoverPrimary(std::function<void()> done = nullptr);

 private:
  void ActivateBackupLocks();
  void PollRecovery(std::uint64_t epoch, std::function<void()> done);
  void RepointSessions(NodeId node);
  void SweepBackupLeases();

  Simulator& sim_;
  LockSwitch& primary_;
  LockSwitch& backup_;
  ControlPlane& control_;
  FailoverConfig config_;
  std::vector<NetLockSession*> sessions_;
  bool backup_active_ = false;
  bool primary_failed_ = false;
  /// Invalidates stale recovery polls: bumped by both FailPrimary and
  /// RecoverPrimary, so a second failure kills the previous recovery.
  std::uint64_t epoch_ = 0;
  /// Bumped only by FailPrimary. Guards the backup activation timer and
  /// the lease-sweep chain: an early RecoverPrimary (before one lease has
  /// passed) must NOT cancel the pending activation — the backup's queued
  /// requests still have to be granted for its queues to ever drain.
  std::uint64_t fail_epoch_ = 0;
  /// One-lease grace from the last FailPrimary: no switch — backup or
  /// recovered primary — may grant before this instant, because grants
  /// issued by the failed primary stay live until their leases expire.
  SimTime grace_until_ = 0;
  /// Locks whose grant stream has moved back to the recovered primary
  /// (backup queue drained). On a second failure these — and only these —
  /// are re-suspended on the backup.
  std::unordered_set<LockId> returned_to_primary_;
};

}  // namespace netlock
