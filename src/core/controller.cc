#include "core/controller.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/check.h"
#include "common/metrics.h"

namespace netlock {

// ---------------------------------------------------------------------------
// ControllerCore
// ---------------------------------------------------------------------------

ControllerCore::ControllerCore(const ControllerConfig& config)
    : config_(config) {
  NETLOCK_CHECK(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  NETLOCK_CHECK(config_.migration_budget >= 1);
}

void ControllerCore::Observe(const std::vector<LockDemand>& window,
                             const Allocation& installed) {
  const double a = config_.ewma_alpha;
  std::unordered_set<LockId> seen;
  seen.reserve(window.size());
  for (const LockDemand& d : window) {
    seen.insert(d.lock);
    const auto [it, fresh] = model_.try_emplace(d.lock);
    if (fresh) {
      it->second.rate = d.rate;
      it->second.contention = d.contention;
    } else {
      it->second.rate = a * d.rate + (1.0 - a) * it->second.rate;
      it->second.contention =
          a * d.contention + (1.0 - a) * it->second.contention;
    }
  }
  std::unordered_set<LockId> resident;
  resident.reserve(installed.switch_slots.size());
  for (const auto& [lock, slots] : installed.switch_slots) {
    resident.insert(lock);
  }
  // Unobserved entries cool off instead of vanishing: an installed lock
  // must keep a model entry (its eviction is a decision, not an accident),
  // and a briefly-idle hot lock should not lose its history to one quiet
  // window. Cold non-residents drop below the floor.
  for (auto it = model_.begin(); it != model_.end();) {
    if (seen.find(it->first) != seen.end()) {
      ++it;
      continue;
    }
    it->second.rate *= (1.0 - a);
    it->second.contention = std::max(1.0, (1.0 - a) * it->second.contention);
    if (it->second.rate < config_.rate_floor &&
        resident.find(it->first) == resident.end()) {
      it = model_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<LockDemand> ControllerCore::SmoothedDemands() const {
  std::vector<LockDemand> out;
  out.reserve(model_.size());
  for (const auto& [lock, entry] : model_) {
    out.push_back(LockDemand{
        lock, entry.rate,
        static_cast<std::uint32_t>(
            std::max<long>(1, std::lround(entry.contention)))});
  }
  return out;
}

double ControllerCore::TotalRate() const {
  double total = 0.0;
  for (const auto& [lock, entry] : model_) total += entry.rate;
  return total;
}

bool ControllerCore::Frozen(LockId lock, SimTime now) const {
  const auto it = last_move_.find(lock);
  return it != last_move_.end() && now < it->second + config_.min_dwell;
}

void ControllerCore::MarkMoved(LockId lock, SimTime now) {
  last_move_[lock] = now;
}

bool ControllerCore::HottestUnfrozen(
    SimTime now, const std::function<bool(LockId)>& eligible,
    LockId* lock) const {
  double best = -1.0;
  bool found = false;
  for (const auto& [id, entry] : model_) {
    if (entry.rate <= best) continue;  // Strict >: map order breaks ties.
    if (Frozen(id, now)) continue;
    if (eligible && !eligible(id)) continue;
    best = entry.rate;
    *lock = id;
    found = true;
  }
  return found;
}

bool ControllerCore::Plan(
    const Allocation& installed, std::uint32_t capacity, SimTime now,
    const std::function<std::size_t(LockId)>& queue_depth,
    Allocation* target, ControllerStats* stats) {
  // The dirty slice: every modeled lock whose dwell clock allows a move.
  // Frozen locks stay out of the slice, which pins them exactly where they
  // are — IncrementalKnapsack keeps absent incumbents verbatim and cannot
  // promote an absent challenger.
  std::vector<LockDemand> slice;
  slice.reserve(model_.size());
  for (const auto& [lock, entry] : model_) {
    if (Frozen(lock, now)) {
      ++stats->skipped_dwell;
      continue;
    }
    slice.push_back(LockDemand{
        lock, entry.rate,
        static_cast<std::uint32_t>(
            std::max<long>(1, std::lround(entry.contention)))});
  }
  IncrementalPolicy policy;
  policy.incumbent_boost = config_.incumbent_boost;
  policy.min_resize_delta = config_.min_resize_delta;
  const Allocation resolved =
      IncrementalKnapsack(installed, slice, capacity, policy);

  std::map<LockId, std::uint32_t> have, want;
  for (const auto& [lock, slots] : installed.switch_slots) have[lock] = slots;
  for (const auto& [lock, slots] : resolved.switch_slots) want[lock] = slots;

  struct Move {
    LockId lock = 0;
    std::uint32_t slots = 0;
    double value = 0.0;  ///< Density (promotions) / staleness (demotions).
  };
  std::vector<Move> promotions, demotions, resizes;
  for (const auto& [lock, slots] : want) {
    const auto it = have.find(lock);
    const auto entry = model_.find(lock);
    const double density =
        entry != model_.end() && entry->second.contention > 0
            ? entry->second.rate / entry->second.contention
            : 0.0;
    if (it == have.end()) {
      promotions.push_back(Move{lock, slots, density});
    } else if (it->second != slots) {
      resizes.push_back(Move{lock, slots, density});
    }
  }
  for (const auto& [lock, slots] : have) {
    if (want.find(lock) == want.end()) {
      const auto entry = model_.find(lock);
      const double density =
          entry != model_.end() && entry->second.contention > 0
              ? entry->second.rate / entry->second.contention
              : 0.0;
      demotions.push_back(Move{lock, slots, density});
    }
  }

  // Cost model: promoting shifts ~rate x horizon requests onto the switch;
  // the pause-drain-move protocol delays everything queued at the server
  // plus a fixed install charge. Not worth it for lukewarm locks.
  std::vector<Move> paid;
  paid.reserve(promotions.size());
  for (const Move& m : promotions) {
    const auto entry = model_.find(m.lock);
    const double gain =
        (entry != model_.end() ? entry->second.rate : 0.0) *
        config_.payback_horizon_sec;
    const double cost =
        config_.fixed_migration_cost +
        config_.drain_cost_per_entry *
            static_cast<double>(queue_depth ? queue_depth(m.lock) : 0);
    if (gain < cost) {
      ++stats->skipped_cost;
      continue;
    }
    paid.push_back(m);
  }
  promotions = std::move(paid);

  // Budget: most-valuable moves first. Demotions are cheapest (they free
  // capacity and their locks are cold — drain is short), so they sort
  // coldest-first; promotions hottest-first; resizes (two migrations each)
  // last.
  std::sort(demotions.begin(), demotions.end(),
            [](const Move& a, const Move& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.lock < b.lock;
            });
  std::sort(promotions.begin(), promotions.end(),
            [](const Move& a, const Move& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.lock < b.lock;
            });
  std::sort(resizes.begin(), resizes.end(),
            [](const Move& a, const Move& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.lock < b.lock;
            });
  int budget = config_.migration_budget;
  auto take = [&budget, stats](std::vector<Move>& moves, int cost_each) {
    std::vector<Move> kept;
    for (Move& m : moves) {
      if (budget >= cost_each) {
        budget -= cost_each;
        kept.push_back(m);
      } else {
        ++stats->skipped_budget;
      }
    }
    moves = std::move(kept);
  };
  take(demotions, 1);
  take(promotions, 1);
  take(resizes, 2);

  // Final target: installed plus the approved moves. A budget-dropped
  // demotion can strand an approved promotion over capacity — shed the
  // coolest promotions until the target fits.
  std::map<LockId, std::uint32_t> final_slots = have;
  for (const Move& m : demotions) final_slots.erase(m.lock);
  for (const Move& m : resizes) final_slots[m.lock] = m.slots;
  for (const Move& m : promotions) final_slots[m.lock] = m.slots;
  std::uint64_t used = 0;
  for (const auto& [lock, slots] : final_slots) used += slots;
  while (used > capacity && !promotions.empty()) {
    const Move dropped = promotions.back();
    promotions.pop_back();
    final_slots.erase(dropped.lock);
    used -= dropped.slots;
    ++stats->skipped_budget;
  }
  if (used > capacity) {
    // Resize growth alone cannot fit: keep the installed sizes this tick.
    for (const Move& m : resizes) {
      final_slots[m.lock] = have[m.lock];
      ++stats->skipped_budget;
    }
    resizes.clear();
  }

  if (final_slots == have) return false;

  stats->promotions += promotions.size();
  stats->demotions += demotions.size();
  stats->resizes += resizes.size();
  for (const Move& m : promotions) MarkMoved(m.lock, now);
  for (const Move& m : demotions) MarkMoved(m.lock, now);
  for (const Move& m : resizes) MarkMoved(m.lock, now);

  target->switch_slots.clear();
  target->server_only.clear();
  target->guaranteed_rate = 0.0;
  for (const auto& [lock, slots] : final_slots) {
    target->switch_slots.emplace_back(lock, slots);
    const auto entry = model_.find(lock);
    if (entry != model_.end()) {
      const double c = std::max(1.0, entry->second.contention);
      target->guaranteed_rate +=
          entry->second.rate * std::min<double>(slots, c) / c;
    }
  }
  for (const Move& m : demotions) target->server_only.push_back(m.lock);
  return true;
}

// ---------------------------------------------------------------------------
// SelfDrivingController
// ---------------------------------------------------------------------------

struct SelfDrivingController::CtrlMetrics {
  MetricCounter* ticks;
  MetricCounter* reallocs;
  MetricCounter* promotions;
  MetricCounter* demotions;
  MetricCounter* resizes;
  MetricCounter* rehomes;
  MetricCounter* skipped_busy;
  MetricCounter* skipped_dwell;
  MetricCounter* skipped_cost;
  MetricCounter* skipped_budget;
  ControllerStats published;

  explicit CtrlMetrics(MetricsRegistry& reg)
      : ticks(&reg.Counter("ctrl.ticks")),
        reallocs(&reg.Counter("ctrl.reallocs")),
        promotions(&reg.Counter("ctrl.promotions")),
        demotions(&reg.Counter("ctrl.demotions")),
        resizes(&reg.Counter("ctrl.resizes")),
        rehomes(&reg.Counter("ctrl.rehomes")),
        skipped_busy(&reg.Counter("ctrl.skipped_busy")),
        skipped_dwell(&reg.Counter("ctrl.skipped_dwell")),
        skipped_cost(&reg.Counter("ctrl.skipped_cost")),
        skipped_budget(&reg.Counter("ctrl.skipped_budget")) {}

  void Publish(const ControllerStats& stats) {
    ticks->Inc(stats.ticks - published.ticks);
    reallocs->Inc(stats.reallocs - published.reallocs);
    promotions->Inc(stats.promotions - published.promotions);
    demotions->Inc(stats.demotions - published.demotions);
    resizes->Inc(stats.resizes - published.resizes);
    rehomes->Inc(stats.rehomes - published.rehomes);
    skipped_busy->Inc(stats.skipped_busy - published.skipped_busy);
    skipped_dwell->Inc(stats.skipped_dwell - published.skipped_dwell);
    skipped_cost->Inc(stats.skipped_cost - published.skipped_cost);
    skipped_budget->Inc(stats.skipped_budget - published.skipped_budget);
    published = stats;
  }
};

SelfDrivingController::SelfDrivingController(Simulator& sim,
                                             ShardedNetLock& sharded,
                                             ControllerConfig config)
    : sim_(sim), sharded_(sharded), config_(config),
      metrics_(std::make_unique<CtrlMetrics>(sim.context().metrics())) {
  NETLOCK_CHECK(config_.interval > 0);
  for (int r = 0; r < sharded_.num_racks(); ++r) {
    cores_.push_back(std::make_unique<ControllerCore>(config_));
    warmup_left_.push_back(config_.warmup_ticks);
  }
}

SelfDrivingController::~SelfDrivingController() { Stop(); }

void SelfDrivingController::Start() {
  if (running_) return;
  running_ = true;
  Tick();
}

void SelfDrivingController::Stop() {
  running_ = false;
  ++generation_;
}

void SelfDrivingController::Tick() {
  const std::uint64_t gen = generation_;
  sim_.Schedule(config_.interval, [this, gen]() {
    if (!running_ || gen != generation_) return;
    ++stats_.ticks;
    for (int r = 0; r < sharded_.num_racks(); ++r) TickRack(r);
    if (sharded_.num_racks() > 1 && config_.rack_imbalance_factor > 1.0) {
      BalanceRacks();
    }
    metrics_->Publish(stats_);
    Tick();
  });
}

void SelfDrivingController::TickRack(int rack) {
  NetLockManager& manager = sharded_.rack(rack);
  ControlPlane& control = manager.control_plane();
  ControllerCore& core = *cores_[rack];
  core.Observe(control.CombinedDemands(), control.installed());
  if (warmup_left_[rack] > 0) {
    --warmup_left_[rack];
    return;
  }
  if (control.MigrationInFlight()) {
    ++stats_.skipped_busy;
    return;
  }
  const std::uint32_t capacity =
      manager.options().switch_config.queue_capacity;
  auto depth = [&control](LockId lock) {
    return control.ServerObjFor(lock).QueueDepth(lock);
  };
  Allocation target;
  if (!core.Plan(control.installed(), capacity, sim_.now(), depth, &target,
                 &stats_)) {
    return;
  }
  ++stats_.reallocs;
  control.ApplyAllocation(target, nullptr);
}

void SelfDrivingController::BalanceRacks() {
  const int n = sharded_.num_racks();
  std::vector<double> rates(n, 0.0);
  double total = 0.0;
  int hot = 0, cool = 0;
  for (int r = 0; r < n; ++r) {
    rates[r] = cores_[r]->TotalRate();
    total += rates[r];
    if (rates[r] > rates[hot]) hot = r;
    if (rates[r] < rates[cool]) cool = r;
  }
  const double mean = total / n;
  if (mean <= 0.0 || rates[hot] <= config_.rack_imbalance_factor * mean) {
    return;
  }
  const SimTime now = sim_.now();
  for (int i = 0; i < config_.max_rehomes_per_tick; ++i) {
    LockId lock = 0;
    const bool found = cores_[hot]->HottestUnfrozen(
        now,
        [this, hot](LockId id) {
          return sharded_.directory().RackFor(id) == hot &&
                 !sharded_.RehomeInFlight(id);
        },
        &lock);
    if (!found) return;
    if (!sharded_.RehomeLock(lock, cool)) return;
    cores_[hot]->MarkMoved(lock, now);
    cores_[cool]->MarkMoved(lock, now);
    ++stats_.rehomes;
  }
}

// ---------------------------------------------------------------------------
// WallClockTicker
// ---------------------------------------------------------------------------

WallClockTicker::WallClockTicker(std::chrono::nanoseconds interval,
                                 std::function<void()> tick)
    : interval_(interval), tick_(std::move(tick)) {
  NETLOCK_CHECK(interval_.count() > 0);
  NETLOCK_CHECK(tick_ != nullptr);
}

WallClockTicker::~WallClockTicker() { Stop(); }

void WallClockTicker::Start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this]() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_.load(std::memory_order_relaxed)) {
      if (cv_.wait_for(lock, interval_, [this]() {
            return stop_.load(std::memory_order_relaxed);
          })) {
        break;
      }
      lock.unlock();
      tick_();
      ticks_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
  });
}

void WallClockTicker::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
  thread_.join();
  started_ = false;
}

}  // namespace netlock
