#include "dataplane/quota.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

TenantQuota::TenantQuota(Pipeline& pipeline, int stage,
                         std::uint16_t max_tenants, QuotaMode mode)
    : mode_(mode),
      cells_(std::make_unique<RegisterArray<Cell>>(pipeline, stage,
                                                   max_tenants)) {}

void TenantQuota::Configure(TenantId t, double rate_per_sec,
                            std::uint32_t burst) {
  NETLOCK_CHECK(t < cells_->size());
  Cell& cell = cells_->ControlRead(t);
  cell.limited = true;
  cell.rate_per_ns = rate_per_sec / static_cast<double>(kSecond);
  cell.burst = static_cast<double>(burst);
  cell.tokens = cell.burst;
  cell.budget = burst;
  cell.used = 0;
  cell.last = 0;
}

void TenantQuota::Unlimit(TenantId t) {
  NETLOCK_CHECK(t < cells_->size());
  cells_->ControlRead(t).limited = false;
}

bool TenantQuota::Admit(PacketPass& pass, TenantId t, SimTime now) {
  if (t >= cells_->size()) return true;  // Unknown tenants are unlimited.
  const bool admitted = cells_->ReadModifyWrite(pass, t, [&](Cell& cell) {
    if (!cell.limited) return true;
    if (mode_ == QuotaMode::kMeter) {
      const SimTime elapsed = now - cell.last;
      cell.last = now;
      cell.tokens = std::min(
          cell.burst, cell.tokens + cell.rate_per_ns *
                                        static_cast<double>(elapsed));
      if (cell.tokens >= 1.0) {
        cell.tokens -= 1.0;
        return true;
      }
      return false;
    }
    // Counter mode: roll the window, then compare against the budget.
    const SimTime window_id = now / window_;
    if (window_id != cell.last) {
      cell.last = window_id;
      cell.used = 0;
    }
    if (cell.used < cell.budget) {
      ++cell.used;
      return true;
    }
    return false;
  });
  if (!admitted) ++rejections_;
  return admitted;
}

}  // namespace netlock
