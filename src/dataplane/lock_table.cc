#include "dataplane/lock_table.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

RegionAllocator::RegionAllocator(std::uint32_t capacity)
    : capacity_(capacity), free_slots_(capacity) {
  if (capacity > 0) free_.emplace(0, capacity);
}

std::optional<Extent> RegionAllocator::Allocate(std::uint32_t slots) {
  if (slots == 0 || slots > free_slots_) return std::nullopt;
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const std::uint32_t left = it->first;
    const std::uint32_t right = it->second;
    if (right - left >= slots) {
      Extent extent{left, left + slots};
      free_.erase(it);
      if (extent.right < right) free_.emplace(extent.right, right);
      free_slots_ -= slots;
      return extent;
    }
  }
  return std::nullopt;  // Fragmented.
}

void RegionAllocator::Free(Extent extent) {
  NETLOCK_CHECK(extent.right <= capacity_ && extent.left < extent.right);
  auto [it, inserted] = free_.emplace(extent.left, extent.right);
  NETLOCK_CHECK(inserted);
  free_slots_ += extent.size();
  // Coalesce with successor.
  auto next = std::next(it);
  if (next != free_.end() && it->second == next->first) {
    it->second = next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor.
  if (it != free_.begin()) {
    auto prev = std::prev(it);
    if (prev->second == it->first) {
      prev->second = it->second;
      free_.erase(it);
    }
  }
}

std::uint32_t RegionAllocator::LargestFreeExtent() const {
  std::uint32_t best = 0;
  for (const auto& [left, right] : free_) best = std::max(best, right - left);
  return best;
}

SwitchLockTable::SwitchLockTable(std::uint32_t max_locks,
                                 std::uint32_t queue_capacity)
    : max_locks_(max_locks), allocator_(queue_capacity) {
  free_meta_indices_.reserve(max_locks);
  for (std::uint32_t i = max_locks; i > 0; --i) {
    free_meta_indices_.push_back(i - 1);
  }
}

const SwitchLockEntry* SwitchLockTable::Install(
    LockId lock, NodeId home_server, const std::vector<std::uint32_t>& slots) {
  NETLOCK_CHECK(!slots.empty());
  NETLOCK_CHECK(entries_.find(lock) == entries_.end());
  if (free_meta_indices_.empty()) return nullptr;

  SwitchLockEntry entry;
  entry.lock_id = lock;
  entry.home_server = home_server;
  std::vector<Extent> acquired;
  for (const std::uint32_t n : slots) {
    const std::optional<Extent> extent = allocator_.Allocate(n);
    if (!extent) {
      for (const Extent& e : acquired) allocator_.Free(e);
      return nullptr;
    }
    acquired.push_back(*extent);
    entry.regions.push_back(LockBounds{extent->left, extent->right});
  }
  entry.meta_index = free_meta_indices_.back();
  free_meta_indices_.pop_back();
  home_server_[lock] = home_server;
  auto [it, inserted] = entries_.emplace(lock, std::move(entry));
  NETLOCK_CHECK(inserted);
  return &it->second;
}

void SwitchLockTable::Remove(LockId lock) {
  const auto it = entries_.find(lock);
  NETLOCK_CHECK(it != entries_.end());
  for (const LockBounds& region : it->second.regions) {
    allocator_.Free(Extent{region.left, region.right});
  }
  free_meta_indices_.push_back(it->second.meta_index);
  entries_.erase(it);
}

const SwitchLockEntry* SwitchLockTable::Find(LockId lock) const {
  const auto it = entries_.find(lock);
  return it == entries_.end() ? nullptr : &it->second;
}

NodeId SwitchLockTable::HomeServer(LockId lock) const {
  const auto it = home_server_.find(lock);
  return it == home_server_.end() ? kInvalidNode : it->second;
}

void SwitchLockTable::SetHomeServer(LockId lock, NodeId server) {
  home_server_[lock] = server;
}

void SwitchLockTable::ReassignHomeServer(LockId lock, NodeId server) {
  const auto it = entries_.find(lock);
  NETLOCK_CHECK(it != entries_.end());
  it->second.home_server = server;
  home_server_[lock] = server;
}

std::vector<LockId> SwitchLockTable::InstalledLocks() const {
  std::vector<LockId> locks;
  locks.reserve(entries_.size());
  for (const auto& [lock, entry] : entries_) locks.push_back(lock);
  std::sort(locks.begin(), locks.end());
  return locks;
}

void SwitchLockTable::Clear() {
  for (const auto& [lock, entry] : entries_) {
    for (const LockBounds& region : entry.regions) {
      allocator_.Free(Extent{region.left, region.right});
    }
    free_meta_indices_.push_back(entry.meta_index);
  }
  entries_.clear();
  // Home-server routing state survives a data-plane restart: it mirrors the
  // directory service, which is external to the switch.
}

}  // namespace netlock
