// The NetLock switch data-plane module (paper Section 4.2).
//
// Implements, against the programmable-switch substrate:
//   - Algorithm 1's dispatch: process switch-resident locks, forward the
//     rest to lock servers;
//   - Algorithm 2's acquire/release logic over circular queues in the
//     shared queue, including the four release cases (S->S, S->E, E->S,
//     E->E) realized with resubmit;
//   - the q1/q2 overflow protocol with lock servers (Section 4.3);
//   - policy support (Section 4.4): FCFS starvation-freedom (native to the
//     queues), per-stage priority classes, and per-tenant quotas;
//   - lease-based cleanup of expired transactions and switch failure
//     injection (Section 4.5).
//
// Fidelity notes. Both paths run under the full register-access
// discipline: one access per register array per pass, stage ordering, and
// resubmit for multi-step operations — exactly the constraints Algorithm 2
// was designed around. The priority path (§4.4's per-stage queues) uses a
// stage-1 aggregate register for the grant decision, per-stage PrioMeta
// registers whose cached mode bitmask enables informed conditional pops,
// and a resubmit chain that grants one waiter per pass.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dataplane/lock_table.h"
#include "dataplane/quota.h"
#include "dataplane/shared_queue.h"
#include "dataplane/slot.h"
#include "net/lock_wire.h"
#include "sim/network.h"
#include "switchsim/pipeline.h"

namespace netlock {

struct LockSwitchConfig {
  /// Total shared-queue slots. The prototype provisions 100K (20 B each =
  /// 2 MB of the tens-of-MB on-chip SRAM).
  std::uint32_t queue_capacity = 100'000;
  /// Slots per register array (one array per stage in the pool).
  std::uint32_t array_size = 16'384;
  /// Maximum simultaneously installed locks (exact-match table + metadata
  /// array size). Match-action tables hold hundreds of thousands of
  /// entries on Tofino-class hardware; the shared queue, not this table,
  /// is the scarce resource.
  std::uint32_t max_locks = 131'072;
  /// Hardware stage budget (Tofino-class: 10-20).
  int num_stages = 12;
  /// Priority classes; 1 selects the pure Algorithm 2 path. Bounded by the
  /// stage budget (paper: "the number of priorities is limited to the
  /// number of stages").
  std::uint8_t num_priorities = 1;
  /// Tenants known to the quota table.
  std::uint16_t max_tenants = 64;
  QuotaMode quota_mode = QuotaMode::kMeter;
  /// Slots in the release-dedup filter: a stage-0 register array of release
  /// fingerprints (hash-indexed) that drops retransmitted copies of a
  /// RELEASE before they can blind-pop someone else's queue entry (releases
  /// do not check transaction IDs, §4.2). Power of two recommended. 0
  /// disables deduplication (pre-adversary behaviour).
  std::uint32_t release_filter_slots = 4096;
  /// Extra one-way delay added to every packet the switch emits, modelling
  /// ASIC pipeline transit. Default 0: testbed link latencies already
  /// include it.
  SimTime pipeline_latency = 0;
};

/// Observer invoked on every grant the switch issues (used by test oracles
/// and the experiment harness; never on the critical path in benchmarks
/// unless installed).
using GrantObserver =
    std::function<void(LockId, TxnId, LockMode, NodeId client)>;

/// Observer invoked when the switch accepts an acquire into its queue (or
/// decides to overflow it to the server). Fires at the admission decision,
/// i.e. in queue order — the FIFO oracle pairs it with the grant observer.
using QueueObserver =
    std::function<void(LockId, TxnId, LockMode, bool overflowed)>;

class LockSwitch {
 public:
  LockSwitch(Network& net, LockSwitchConfig config = LockSwitchConfig{});

  NodeId node() const { return node_; }
  const LockSwitchConfig& config() const { return config_; }

  // --- Control plane: lock placement (Section 4.3) ---

  /// Installs a lock with `slots` queue slots. When num_priorities > 1 the
  /// slots are split across the classes as evenly as possible (remainder to
  /// the highest-priority classes), each class getting at least one slot,
  /// so at least max(slots, num_priorities) are allocated in total.
  /// Returns false if switch memory or the lock table is exhausted.
  /// `suspended` installs in queue-but-don't-grant mode (failover, §4.5);
  /// call Activate() to begin granting.
  bool InstallLock(LockId lock, NodeId home_server, std::uint32_t slots,
                   bool suspended = false);

  /// Leaves suspended mode and grants the queue head (plus the leading
  /// shared batch) exactly as a release cascade would. No-op when already
  /// active. Default path only.
  void Activate(LockId lock);

  /// True if the lock is installed and in suspended mode.
  bool IsSuspended(LockId lock) const;

  /// Re-enters suspended mode for an installed lock: requests keep queuing
  /// but nothing is granted until Activate(). Used by failover when the
  /// primary fails again while this (backup) switch still holds queues.
  /// Default path only (like Activate).
  void Suspend(LockId lock);

  /// True if the lock is installed in the switch.
  bool IsInstalled(LockId lock) const {
    return table_.Find(lock) != nullptr;
  }

  /// Pauses enqueuing for a lock being moved: new requests are forwarded to
  /// the home server marked buffer-only until the queue drains (§4.3).
  void PauseLock(LockId lock, bool paused);

  /// True when a lock's queues hold no entries (safe to remove).
  bool QueueEmpty(LockId lock) const;

  /// Removes a drained lock and frees its region.
  void RemoveLock(LockId lock);

  /// Directory entry for locks the switch does not own: where to forward.
  void SetHomeServer(LockId lock, NodeId server) {
    table_.SetHomeServer(lock, server);
  }

  /// Fallback route for locks with no explicit directory entry — the
  /// hash-partitioning the clients' directory service uses. Keeps the
  /// switch's exact-match table small even for huge lock spaces.
  void SetDefaultRoute(std::function<NodeId(LockId)> route) {
    default_route_ = std::move(route);
  }

  /// Enables one-RTT transactions (§4.1): grants are forwarded to the
  /// lock's database server — which returns the item together with the
  /// implied grant — instead of being sent back to the client. Pass
  /// nullptr to disable.
  void SetOneRttRoute(std::function<NodeId(LockId)> db_route) {
    db_route_ = std::move(db_route);
  }

  /// Resolves a lock's home server (explicit entry, then default route).
  NodeId RouteFor(LockId lock) const {
    const NodeId node = table_.HomeServer(lock);
    if (node != kInvalidNode) return node;
    return default_route_ ? default_route_(lock) : kInvalidNode;
  }

  SwitchLockTable& table() { return table_; }
  TenantQuota& quota() { return *quota_; }

  // --- Control plane: lease handling and failure (Section 4.5) ---

  /// What a lease sweep should do — split so chain replication can run the
  /// forced releases on the head (where they replicate down the chain) and
  /// the overflow re-arm on the tail (the emitting replica).
  enum class SweepScope {
    kAll,
    kForcedReleasesOnly,
    kOverflowRearmOnly,
  };

  /// Clears entries whose lease expired: forced-releases expired queue heads
  /// and expired holders so blocked requests make progress, and re-arms
  /// wedged overflow episodes. Called periodically by the control plane.
  void ClearExpired(SimTime lease, SweepScope scope = SweepScope::kAll);

  // --- Chain replication (paper §6.5's closing remark: chaining NetLock
  // switches shrinks fail-over downtime to a routing update) ---

  /// Makes this switch the chain head: every applied state-changing op is
  /// forwarded to `tail`, and all client/server-facing emissions are
  /// suppressed (the tail is the emitting replica).
  void ConfigureChainHead(NodeId tail);

  /// Makes this switch the chain tail: ops arrive pre-admitted from the
  /// head; emissions carry `head_src` as their source address so releases
  /// and retransmissions keep entering the chain at the head.
  void ConfigureChainTail(NodeId head_src);

  /// Leaves chain mode (tail promotion after head failure, or teardown).
  void PromoteStandalone();

  bool chained() const {
    return chain_next_ != kInvalidNode || src_override_ != kInvalidNode;
  }

  /// Injects a switch failure: all subsequent packets are dropped.
  void Fail();

  /// Restarts the switch: register state (queues, metadata, installed
  /// locks) is lost — "the switch retains none of its former state" — but
  /// directory routing survives (it mirrors the external directory service).
  void Restart();

  bool failed() const { return failed_; }

  /// Installs an observer for every switch-issued grant.
  void set_grant_observer(GrantObserver observer) {
    grant_observer_ = std::move(observer);
  }

  /// Installs an observer for every acquire admission decision.
  void set_queue_observer(QueueObserver observer) {
    queue_observer_ = std::move(observer);
  }

  // --- Statistics ---
  struct Stats {
    std::uint64_t grants = 0;          ///< Locks granted by the switch.
    std::uint64_t releases = 0;        ///< Releases processed.
    std::uint64_t forwarded_unowned = 0;   ///< To servers: not our lock.
    std::uint64_t forwarded_overflow = 0;  ///< To servers: buffer-only.
    std::uint64_t rejected_quota = 0;
    std::uint64_t queue_empty_notifies = 0;
    std::uint64_t pushes_accepted = 0;
    std::uint64_t dropped_while_failed = 0;
    std::uint64_t stale_releases = 0;
    std::uint64_t duplicate_releases = 0;  ///< Dropped by the dedup filter.
    /// Releases whose mode/txn did not match the queue head (the releaser's
    /// entry was already reclaimed): dropped by the validation pass instead
    /// of blind-popping another waiter's entry.
    std::uint64_t mismatched_releases = 0;
  };
  const Stats& stats() const { return stats_; }
  std::uint64_t resubmits() const { return pipeline_.total_resubmits(); }

  /// Harvests per-lock demand counters (r_i as a rate over `window_sec`,
  /// c_i as max occupancy) for installed locks, appending to `out`, and
  /// resets the counters (§4.3 reallocation input).
  void HarvestDemands(double window_sec, std::vector<LockDemand>& out);

  /// Direct data-plane entry (bypasses the network); used by unit tests.
  void HandlePacket(const Packet& pkt);

  /// Control-plane inspection of one installed lock (diagnostics, tests).
  struct DebugState {
    LockMeta meta;
    LockBounds bounds;
    QueueSlot head;
  };
  DebugState Debug(LockId lock) const;

 private:
  struct AcquireDecision {
    enum class Kind { kEnqueueGrant, kEnqueueWait, kForwardOverflow } kind;
    std::uint32_t slot_index = 0;
  };

  void HandleAcquire(const LockHeader& hdr, bool pushed);
  /// Returns false when the release was dropped as a retransmitted
  /// duplicate (dedup filter hit) — the caller must not chain-forward it.
  bool HandleRelease(const LockHeader& hdr, bool lease_forced);
  void HandleResume(const LockHeader& hdr);
  void HandleAcquirePrio(const LockHeader& hdr);
  bool HandleReleasePrio(const LockHeader& hdr, bool lease_forced);
  /// Dedup-filter RMW (stage 0, before any other register access on the
  /// release pass). True when hdr is a retransmitted copy already seen.
  bool DuplicateRelease(const LockHeader& hdr, PacketPass& pass);
  /// The resubmit-per-grant chain after a priority-path release leaves the
  /// lock free: pops and grants the highest-priority waiter per pass, and
  /// keeps going while the grants are shared.
  void GrantChainPrio(const SwitchLockEntry& entry, PacketPass& pass);

  void SendGrant(const LockHeader& request);
  void SendToServer(LockHeader hdr, NodeId server, std::uint8_t extra_flags);
  void SendQueueEmptyNotify(LockId lock, NodeId server,
                            std::uint32_t free_slots);
  void Emit(Packet pkt);
  void ChainForward(LockHeader hdr, std::uint8_t extra_flags);

  Network& net_;
  LockSwitchConfig config_;
  NodeId node_;
  Pipeline pipeline_;
  TraceLog* trace_;  ///< Request-lifecycle tracing (resolved once).
  /// Rack label captured at construction (TraceLog::current_pid); asserted
  /// while this switch handles packets so shared-log spans split by rack.
  std::uint32_t trace_pid_ = 0;

  // Register arrays. Default path stage layout: 0 = quota + boundaries,
  // 1 = per-lock queue metadata, 2.. = the pooled shared-queue arrays.
  // Priority path: 0 = quota + per-class boundaries, 1 = aggregate state,
  // 2..1+P = per-class queue metadata, 2+P.. = shared-queue arrays.
  std::unique_ptr<TenantQuota> quota_;
  /// Release-dedup fingerprints, hash-indexed (stage 0; nullptr when
  /// config_.release_filter_slots == 0).
  std::unique_ptr<RegisterArray<std::uint64_t>> release_filter_;
  std::unique_ptr<RegisterArray<LockBounds>> bounds_;
  std::unique_ptr<RegisterArray<LockMeta>> meta_;
  std::unique_ptr<RegisterArray<AggState>> agg_;
  std::vector<std::unique_ptr<RegisterArray<LockBounds>>> prio_bounds_;
  std::vector<std::unique_ptr<RegisterArray<PrioMeta>>> prio_meta_;
  std::unique_ptr<SharedQueue> queue_;

  SwitchLockTable table_;
  std::function<NodeId(LockId)> default_route_;
  std::function<NodeId(LockId)> db_route_;
  std::unordered_map<LockId, bool> paused_;

  bool failed_ = false;
  /// Stamped into lease-forced releases' aux so each forced instance has a
  /// distinct fingerprint: a chained replica runs them through its normal
  /// (deduplicating) release path, and two forced releases of the same
  /// ghost entry must both apply there.
  std::uint32_t forced_release_nonce_ = 1;
  /// Stamped into each grant's aux: a per-instance nonce letting clients
  /// distinguish a network-duplicated copy of a grant (same nonce — drop)
  /// from the grant of a second queue entry created by a retransmitted
  /// acquire (fresh nonce — ghost-release it). Deliberately not reset by
  /// Restart(): post-restart grants must never collide with pre-crash
  /// fingerprints still cached in client-side filters.
  std::uint32_t grant_nonce_ = 1;
  NodeId chain_next_ = kInvalidNode;    ///< Head: where ops replicate to.
  NodeId src_override_ = kInvalidNode;  ///< Tail: emission source address.
  bool suppress_emissions_ = false;     ///< Head: tail emits for the chain.
  Stats stats_;

  /// Registry instruments mirroring stats_ (resolved once; see metrics.h).
  struct Metrics {
    MetricCounter* granted;
    MetricCounter* queued;
    MetricCounter* rejected;
    MetricCounter* releases;
    MetricCounter* stale_releases;
    MetricCounter* overflow_episodes;   ///< q1-full episode starts.
    MetricCounter* q1_to_q2_forwards;   ///< Buffer-only forwards to q2.
    MetricCounter* sync_state_rtts;     ///< kSyncState round-trips seen.
    MetricCounter* forwarded_unowned;
    MetricCounter* pushes_accepted;
    MetricCounter* duplicate_releases;  ///< Dedup-filter hits.
    MetricCounter* mismatched_releases; ///< Validation-pass drops.
  };
  Metrics metrics_;

  GrantObserver grant_observer_;
  QueueObserver queue_observer_;
};

}  // namespace netlock
