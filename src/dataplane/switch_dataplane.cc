#include "dataplane/switch_dataplane.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace netlock {

namespace {
// Debug tracing for one lock id, enabled via NETLOCK_TRACE_LOCK=<id>.
LockId TraceLock() {
  static const LockId traced = []() -> LockId {
    const char* env = std::getenv("NETLOCK_TRACE_LOCK");
    return env ? static_cast<LockId>(std::strtoul(env, nullptr, 10))
               : kInvalidLock;
  }();
  return traced;
}
#define NETLOCK_TRACE(lock, ...)                      \
  do {                                                \
    if ((lock) == TraceLock()) {                      \
      std::fprintf(stderr, "[%llu] ",                 \
                   (unsigned long long)net_.sim().now()); \
      std::fprintf(stderr, __VA_ARGS__);              \
    }                                                 \
  } while (0)
}  // namespace

// Overflow protocol (paper Section 4.3, "Handling overflowed requests"),
// as implemented here. Links are FIFO, which the protocol exploits:
//
//   1. An acquire that finds q1[i] full (or already overflowing) is
//      forwarded to the home server marked kFlagBufferOnly; the server only
//      buffers it in q2[i]. The switch counts these in fwd_since_notify.
//   2. Grants/dequeues happen only from q1[i]. When a release empties
//      q1[i] while overflowing, the switch sends kQueueEmpty(free=R) and
//      zeroes fwd_since_notify.
//   3. The server pushes min(R, |q2|) buffered requests back (kFlagPushed),
//      then replies kSyncState(aux = remaining |q2|).
//   4. On kSyncState the switch ends the episode only if remaining == 0 AND
//      fwd_since_notify == 0 AND q1 is not full. A nonzero fwd_since_notify
//      means buffer-only requests raced past the server's reply and are
//      sitting (or about to sit) in q2; ending the episode then would let
//      new arrivals enqueue directly into q1 ahead of them, breaking the
//      single-queue FIFO equivalence — and could strand them forever. If
//      q1 is empty at that point the switch immediately re-notifies
//      (step 2); otherwise the next emptying release re-notifies.
//
// This yields the paper's stated invariant: while both q1 and q2 hold
// requests, grants pop only from q1 and new requests append only to q2, so
// the two behave exactly as one queue.

LockSwitch::LockSwitch(Network& net, LockSwitchConfig config)
    : net_(net),
      config_(config),
      pipeline_(config.num_stages, /*max_resubmits=*/0,
                &net.sim().context()),
      trace_(&net.sim().context().trace()),
      trace_pid_(net.sim().context().trace().current_pid()),
      table_(config.max_locks, config.queue_capacity) {
  NETLOCK_CHECK(config_.num_priorities >= 1);
  NETLOCK_CHECK(config_.num_priorities <= config_.num_stages - 4);
  NETLOCK_CHECK(config_.num_priorities <= kMaxPriorities);
  MetricsRegistry& reg = net_.sim().context().metrics();
  metrics_.granted = &reg.Counter("dataplane.acquires_granted");
  metrics_.queued = &reg.Counter("dataplane.acquires_queued");
  metrics_.rejected = &reg.Counter("dataplane.acquires_rejected");
  metrics_.releases = &reg.Counter("dataplane.releases");
  metrics_.stale_releases = &reg.Counter("dataplane.stale_releases");
  metrics_.overflow_episodes = &reg.Counter("dataplane.overflow_episodes");
  metrics_.q1_to_q2_forwards = &reg.Counter("dataplane.q1_to_q2_forwards");
  metrics_.sync_state_rtts = &reg.Counter("dataplane.sync_state_rtts");
  metrics_.forwarded_unowned = &reg.Counter("dataplane.forwarded_unowned");
  metrics_.pushes_accepted = &reg.Counter("dataplane.pushes_accepted");
  metrics_.duplicate_releases = &reg.Counter("dataplane.duplicate_releases");
  metrics_.mismatched_releases =
      &reg.Counter("dataplane.mismatched_releases");
  node_ = net_.AddNode([this](const Packet& pkt) { HandlePacket(pkt); });
  quota_ = std::make_unique<TenantQuota>(pipeline_, /*stage=*/0,
                                         config_.max_tenants,
                                         config_.quota_mode);
  if (config_.release_filter_slots > 0) {
    // Stage 0, before the boundary registers: a release pass consults the
    // filter first, so a retransmitted copy never reaches the queue RMW.
    release_filter_ = std::make_unique<RegisterArray<std::uint64_t>>(
        pipeline_, /*stage=*/0, config_.release_filter_slots);
  }
  if (config_.num_priorities == 1) {
    bounds_ = std::make_unique<RegisterArray<LockBounds>>(
        pipeline_, /*stage=*/0, config_.max_locks);
    meta_ = std::make_unique<RegisterArray<LockMeta>>(pipeline_, /*stage=*/1,
                                                      config_.max_locks);
    queue_ = std::make_unique<SharedQueue>(pipeline_, /*first_stage=*/2,
                                           config_.queue_capacity,
                                           config_.array_size);
  } else {
    // Priority layout: aggregate decision register at stage 1, one queue-
    // metadata register per class in stages 2..1+P (the paper's "one queue
    // in each stage for one priority"), slots after them.
    agg_ = std::make_unique<RegisterArray<AggState>>(pipeline_, /*stage=*/1,
                                                     config_.max_locks);
    for (int p = 0; p < config_.num_priorities; ++p) {
      prio_bounds_.push_back(std::make_unique<RegisterArray<LockBounds>>(
          pipeline_, /*stage=*/0, config_.max_locks));
      prio_meta_.push_back(std::make_unique<RegisterArray<PrioMeta>>(
          pipeline_, /*stage=*/2 + p, config_.max_locks));
    }
    queue_ = std::make_unique<SharedQueue>(
        pipeline_, /*first_stage=*/2 + config_.num_priorities,
        config_.queue_capacity, config_.array_size);
  }
}

bool LockSwitch::InstallLock(LockId lock, NodeId home_server,
                             std::uint32_t slots, bool suspended) {
  NETLOCK_CHECK(slots >= 1);
  NETLOCK_CHECK(!suspended || config_.num_priorities == 1);
  std::vector<std::uint32_t> split;
  if (config_.num_priorities == 1) {
    split.push_back(slots);
  } else {
    // Split across priority classes, at least one slot each. The remainder
    // is spread over the first (highest-priority) classes so the split sums
    // to exactly the slots installed — slots/p per class both dropped the
    // remainder (10 slots over 4 classes allocated only 8) and
    // over-allocated when slots < p.
    const std::uint32_t p = config_.num_priorities;
    const std::uint32_t total = std::max(slots, p);
    const std::uint32_t base = total / p;
    const std::uint32_t remainder = total % p;
    std::uint32_t allocated = 0;
    for (std::uint32_t i = 0; i < p; ++i) {
      split.push_back(base + (i < remainder ? 1 : 0));
      allocated += split.back();
    }
    NETLOCK_CHECK(allocated == total);
  }
  const SwitchLockEntry* entry = table_.Install(lock, home_server, split);
  if (entry == nullptr) return false;

  if (config_.num_priorities == 1) {
    const LockBounds& bounds = entry->regions[0];
    bounds_->ControlWrite(entry->meta_index, bounds);
    LockMeta meta;
    meta.head = bounds.left;
    meta.tail = bounds.left;
    meta.suspended = suspended;
    meta_->ControlWrite(entry->meta_index, meta);
  } else {
    agg_->ControlWrite(entry->meta_index, AggState{});
    for (int p = 0; p < config_.num_priorities; ++p) {
      const LockBounds& bounds = entry->regions[p];
      // The PrioMeta mode bitmask covers one 64-bit register.
      NETLOCK_CHECK(bounds.size() <= 64);
      prio_bounds_[p]->ControlWrite(entry->meta_index, bounds);
      PrioMeta meta;
      meta.head = bounds.left;
      meta.tail = bounds.left;
      prio_meta_[p]->ControlWrite(entry->meta_index, meta);
    }
  }
  return true;
}

void LockSwitch::PauseLock(LockId lock, bool paused) {
  NETLOCK_CHECK(table_.Find(lock) != nullptr);
  paused_[lock] = paused;
}

bool LockSwitch::QueueEmpty(LockId lock) const {
  const SwitchLockEntry* entry = table_.Find(lock);
  NETLOCK_CHECK(entry != nullptr);
  if (config_.num_priorities == 1) {
    return meta_->ControlRead(entry->meta_index).count == 0;
  }
  const AggState& agg = agg_->ControlRead(entry->meta_index);
  return agg.holders == 0 && agg.waiting_total == 0;
}

void LockSwitch::RemoveLock(LockId lock) {
  NETLOCK_CHECK(QueueEmpty(lock));
  table_.Remove(lock);
  paused_.erase(lock);
}

void LockSwitch::Fail() { failed_ = true; }

void LockSwitch::ConfigureChainHead(NodeId tail) {
  NETLOCK_CHECK(tail != kInvalidNode);
  NETLOCK_CHECK(config_.num_priorities == 1);  // Chain: default path only.
  chain_next_ = tail;
  suppress_emissions_ = true;
  src_override_ = kInvalidNode;
}

void LockSwitch::ConfigureChainTail(NodeId head_src) {
  NETLOCK_CHECK(head_src != kInvalidNode);
  src_override_ = head_src;
  chain_next_ = kInvalidNode;
  suppress_emissions_ = false;
}

void LockSwitch::PromoteStandalone() {
  chain_next_ = kInvalidNode;
  src_override_ = kInvalidNode;
  suppress_emissions_ = false;
}

void LockSwitch::ChainForward(LockHeader hdr, std::uint8_t extra_flags) {
  NETLOCK_CHECK(chain_next_ != kInvalidNode);
  hdr.flags |= extra_flags;
  net_.Send(MakeLockPacket(node_, chain_next_, hdr));
}

void LockSwitch::Restart() {
  failed_ = false;
  table_.Clear();
  queue_->ControlClear();
  if (release_filter_ != nullptr) {
    for (std::uint32_t i = 0; i < config_.release_filter_slots; ++i) {
      release_filter_->ControlWrite(i, 0);
    }
  }
  for (std::uint32_t i = 0; i < config_.max_locks; ++i) {
    if (config_.num_priorities == 1) {
      meta_->ControlWrite(i, LockMeta{});
      bounds_->ControlWrite(i, LockBounds{});
    } else {
      agg_->ControlWrite(i, AggState{});
      for (int p = 0; p < config_.num_priorities; ++p) {
        prio_bounds_[p]->ControlWrite(i, LockBounds{});
        prio_meta_[p]->ControlWrite(i, PrioMeta{});
      }
    }
  }
  paused_.clear();
}

void LockSwitch::HandlePacket(const Packet& pkt) {
  if (failed_) {
    ++stats_.dropped_while_failed;
    return;
  }
  TraceLog::PidScope pid_scope(*trace_, trace_pid_);
  const std::optional<LockHeader> hdr = LockHeader::Parse(pkt);
  if (!hdr) return;  // Non-lock traffic: forwarded by the regular pipeline.
  // Chain tail: the head's quota already rejected this acquire; nothing
  // was enqueued anywhere — just emit the rejection.
  if ((hdr->flags & kFlagQuotaRejected) != 0 &&
      hdr->op == LockOp::kAcquire) {
    ++stats_.rejected_quota;
    metrics_.rejected->Inc();
    LockHeader reject = *hdr;
    reject.op = LockOp::kReject;
    reject.aux = static_cast<std::uint32_t>(AcquireResult::kRejected);
    Emit(MakeLockPacket(node_, hdr->client_node, reject));
    return;
  }
  switch (hdr->op) {
    case LockOp::kAcquire:
      if (config_.num_priorities > 1) {
        HandleAcquirePrio(*hdr);
      } else {
        HandleAcquire(*hdr, /*pushed=*/false);
      }
      break;
    case LockOp::kPush:
      HandleAcquire(*hdr, /*pushed=*/true);
      if (chain_next_ != kInvalidNode) ChainForward(*hdr, 0);
      break;
    case LockOp::kRelease: {
      // A dedup-filter hit means this packet is a network-retransmitted
      // copy: it was never applied, so it must not replicate down the chain
      // either (the tail's filter state would diverge from the head's).
      const bool applied =
          config_.num_priorities > 1
              ? HandleReleasePrio(*hdr, /*lease_forced=*/false)
              : HandleRelease(*hdr, /*lease_forced=*/false);
      if (applied && chain_next_ != kInvalidNode) ChainForward(*hdr, 0);
      break;
    }
    case LockOp::kSyncState:
      HandleResume(*hdr);
      if (chain_next_ != kInvalidNode) ChainForward(*hdr, 0);
      break;
    case LockOp::kCancel:
      // Deadlock-policy cancel. The policies run with server-resident
      // locks (the switch queue has no mid-queue removal primitive), so
      // route to the home server like any other server-owned op; for a
      // switch-resident lock the server-side removal is a no-op and the
      // entry falls to the lease sweep.
      SendToServer(*hdr, RouteFor(hdr->lock_id), kFlagServerOwned);
      break;
    default:
      break;  // kGrant/kReject/kQueueEmpty are never addressed to the switch.
  }
}

void LockSwitch::HandleAcquire(const LockHeader& hdr, bool pushed) {
  PacketPass pass = pipeline_.BeginPass();

  // Stage 0: tenant quota (client requests only; pushed requests were
  // admitted when they first arrived, and chained ops at the head).
  const bool pre_admitted = pushed || (hdr.flags & kFlagChained) != 0;
  if (!pre_admitted && !quota_->Admit(pass, hdr.tenant, net_.sim().now())) {
    ++stats_.rejected_quota;
    metrics_.rejected->Inc();
    if (chain_next_ != kInvalidNode) {
      // Chain head: the tail emits the rejection (uniform emission point).
      ChainForward(hdr, kFlagQuotaRejected);
      return;
    }
    LockHeader reject = hdr;
    reject.op = LockOp::kReject;
    reject.aux = static_cast<std::uint32_t>(AcquireResult::kRejected);
    Emit(MakeLockPacket(node_, hdr.client_node, reject));
    return;
  }
  const SwitchLockEntry* entry = table_.Find(hdr.lock_id);
  if (entry == nullptr) {
    // Algorithm 1 line 12: not our lock; the server owns it outright.
    if (!pushed && chain_next_ != kInvalidNode) {
      ChainForward(hdr, kFlagChained);
    }
    SendToServer(hdr, RouteFor(hdr.lock_id), kFlagServerOwned);
    ++stats_.forwarded_unowned;
    metrics_.forwarded_unowned->Inc();
    if (trace_->Sampled(hdr.lock_id, hdr.txn_id)) {
      trace_->Instant(TraceTrack::kPipeline, "pipeline.forward_unowned",
                      net_.sim().now(),
                      TraceLog::RequestId(hdr.lock_id, hdr.txn_id));
    }
    return;
  }
  const auto paused_it = paused_.find(hdr.lock_id);
  if (!pushed && paused_it != paused_.end() && paused_it->second) {
    // Lock being migrated: buffer at the server to preserve order (§4.3).
    if (queue_observer_) {
      queue_observer_(hdr.lock_id, hdr.txn_id, hdr.mode,
                      /*overflowed=*/true);
    }
    if (chain_next_ != kInvalidNode) ChainForward(hdr, kFlagChained);
    SendToServer(hdr, entry->home_server, kFlagBufferOnly);
    ++stats_.forwarded_overflow;
    metrics_.q1_to_q2_forwards->Inc();
    return;
  }

  // Stage 0: region boundaries; stage 1: queue metadata RMW.
  const LockBounds bounds = bounds_->Read(pass, entry->meta_index);
  struct Outcome {
    AcquireDecision::Kind kind;
    std::uint32_t slot_index = 0;
  };
  bool episode_start = false;  // q1 full for the first time this episode.
  const Outcome outcome = meta_->ReadModifyWrite(
      pass, entry->meta_index, [&](LockMeta& m) -> Outcome {
        if (!pushed) ++m.req_count;  // r_i counter (pushes counted once).
        // Chain tail: follow the head's overflow decision so the replicas'
        // queue contents stay identical (the head may lag an overflow
        // episode behind the tail after a tail-side wedge re-arm).
        const bool chained = (hdr.flags & kFlagChained) != 0;
        const bool must_overflow =
            chained ? (hdr.flags & kFlagOverflowed) != 0
                    : (m.overflow || m.count == bounds.size());
        if (!pushed && must_overflow) {
          episode_start = !m.overflow;
          m.overflow = true;
          ++m.fwd_since_notify;
          return {AcquireDecision::Kind::kForwardOverflow, 0};
        }
        if (pushed && m.count == bounds.size()) {
          // A push arriving at a full q1: under an adversarial network a
          // duplicated kQueueEmpty notify can make the server push more
          // entries than there are free slots, or direct acquires can race
          // in ahead of the pushes. Bounce it back to q2 instead of
          // corrupting the ring (order may bend; correctness holds).
          episode_start = !m.overflow;
          m.overflow = true;
          ++m.fwd_since_notify;
          return {AcquireDecision::Kind::kForwardOverflow, 0};
        }
        NETLOCK_CHECK(m.count < bounds.size());
        const std::uint32_t slot_index = m.tail;
        m.tail = SharedQueue::Next(m.tail, bounds);
        ++m.count;
        m.max_count = std::max(m.max_count, m.count);  // c_i counter.
        const bool was_empty = m.count == 1;
        const bool all_shared = m.xcnt == 0;
        if (hdr.mode == LockMode::kExclusive) ++m.xcnt;
        // Algorithm 2 lines 3-5 (suspended locks queue without granting).
        const bool grant =
            !m.suspended &&
            (was_empty || (all_shared && hdr.mode == LockMode::kShared));
        return {grant ? AcquireDecision::Kind::kEnqueueGrant
                      : AcquireDecision::Kind::kEnqueueWait,
                slot_index};
      });

  NETLOCK_TRACE(hdr.lock_id,
                "SW acquire lock=%u mode=%d txn=%llu pushed=%d -> %s slot=%u\n",
                hdr.lock_id, (int)hdr.mode,
                (unsigned long long)hdr.txn_id, pushed,
                outcome.kind == AcquireDecision::Kind::kForwardOverflow
                    ? "overflow"
                    : (outcome.kind == AcquireDecision::Kind::kEnqueueGrant
                           ? "grant"
                           : "wait"),
                outcome.slot_index);
  if (!pushed && queue_observer_) {
    queue_observer_(
        hdr.lock_id, hdr.txn_id, hdr.mode,
        outcome.kind == AcquireDecision::Kind::kForwardOverflow);
  }
  if (outcome.kind == AcquireDecision::Kind::kForwardOverflow) {
    if (episode_start) metrics_.overflow_episodes->Inc();
    if (!pushed && chain_next_ != kInvalidNode) {
      ChainForward(hdr, kFlagChained | kFlagOverflowed);
    }
    LockHeader fwd = hdr;
    if (pushed) {
      // A bounced push re-enters q2 as a fresh buffer-only request.
      fwd.op = LockOp::kAcquire;
      fwd.flags &= static_cast<std::uint8_t>(~kFlagPushed);
    }
    SendToServer(fwd, entry->home_server, kFlagBufferOnly);
    ++stats_.forwarded_overflow;
    metrics_.q1_to_q2_forwards->Inc();
    if (trace_->Sampled(hdr.lock_id, hdr.txn_id)) {
      trace_->Instant(TraceTrack::kQueue, "queue.overflow_forward",
                      net_.sim().now(),
                      TraceLog::RequestId(hdr.lock_id, hdr.txn_id));
    }
    return;
  }
  if (!pushed && chain_next_ != kInvalidNode) ChainForward(hdr, kFlagChained);

  // Stage 2+: write the request into its shared-queue slot.
  QueueSlot slot;
  slot.mode = hdr.mode;
  slot.txn_id = hdr.txn_id;
  slot.client_node = hdr.client_node;
  slot.tenant = hdr.tenant;
  slot.timestamp = net_.sim().now();
  queue_->Write(pass, outcome.slot_index, slot);

  if (pushed) {
    ++stats_.pushes_accepted;
    metrics_.pushes_accepted->Inc();
  }
  if (trace_->Sampled(hdr.lock_id, hdr.txn_id)) {
    const std::uint64_t id = TraceLog::RequestId(hdr.lock_id, hdr.txn_id);
    const SimTime now = net_.sim().now();
    const bool granted =
        outcome.kind == AcquireDecision::Kind::kEnqueueGrant;
    trace_->Complete(TraceTrack::kPipeline, "pipeline.acquire", now, now,
                     id, {"passes", pass.pass_index() + 1},
                     {"granted", granted ? 1u : 0u});
    trace_->Instant(TraceTrack::kQueue, "queue.enqueue", now, id,
                    {"slot", outcome.slot_index});
  }
  if (outcome.kind == AcquireDecision::Kind::kEnqueueGrant) {
    SendGrant(hdr);
  } else {
    metrics_.queued->Inc();
  }
}

bool LockSwitch::HandleRelease(const LockHeader& hdr, bool lease_forced) {
  const SwitchLockEntry* entry = table_.Find(hdr.lock_id);
  if (entry == nullptr) {
    SendToServer(hdr, RouteFor(hdr.lock_id), kFlagServerOwned);
    return true;
  }
  PacketPass pass = pipeline_.BeginPass();
  // Stage 0 first access: drop retransmitted copies before they can
  // blind-pop a queue entry. Lease-forced releases are control-plane
  // internal and never duplicated; they skip the filter so that repeated
  // forced releases of re-granted entries are not misdropped.
  if (!lease_forced && DuplicateRelease(hdr, pass)) return false;
  const LockBounds bounds = bounds_->Read(pass, entry->meta_index);

  // Validation pass (Algorithm 2 line 8, hoisted): peek at the head entry
  // BEFORE popping. Releases carry no queue position, so the pop is a blind
  // head-pop; under an adversarial network a release can outlive its entry
  // (the lease sweep force-released it, or a retransmission-created
  // duplicate entry was already reclaimed) and the blind pop would then
  // dequeue some other waiter's entry — double-granting the next requester
  // while the popped waiter still believes it is queued. The head slot
  // lives in a later stage than the queue metadata, so the pop happens on
  // a resubmit — the same dequeue-then-inspect recirculation the paper
  // needs for consecutive shared grants.
  const LockMeta peek = meta_->Read(pass, entry->meta_index);
  // Suspended locks have granted nothing: a *client* release reaching
  // them is a stale pre-failure message and must not dequeue a waiter. A
  // lease-forced release, however, targets the (expired) queue head itself
  // and must still dequeue it, or the sweep could never reclaim entries on
  // a suspended lock.
  if (peek.count == 0 || (peek.suspended && !lease_forced)) {
    // A release for an entry the switch no longer has (post-restart or
    // post-lease-expiry duplicate). Safe to drop: leases already reclaimed
    // the slot.
    ++stats_.stale_releases;
    metrics_.stale_releases->Inc();
    NETLOCK_TRACE(hdr.lock_id,
                  "SW release lock=%u mode=%d txn=%llu forced=%d stale=1\n",
                  hdr.lock_id, (int)hdr.mode,
                  (unsigned long long)hdr.txn_id, lease_forced);
    if (trace_->Sampled(hdr.lock_id, hdr.txn_id)) {
      trace_->Instant(TraceTrack::kPipeline, "pipeline.stale_release",
                      net_.sim().now(),
                      TraceLog::RequestId(hdr.lock_id, hdr.txn_id));
    }
    return true;
  }
  const QueueSlot head_peek = queue_->Read(pass, peek.head);
  // An exclusive head is popped only by its own holder's release; a shared
  // head is popped by any shared release (shared releases are commutative —
  // holders release in arbitrary order but each pop retires one granted
  // shared entry). A mode or transaction mismatch means the releaser's own
  // entry is already gone: drop it instead of corrupting the ring.
  // Lease-forced releases are built from the head itself and always match.
  if (!lease_forced &&
      (head_peek.mode != hdr.mode ||
       (hdr.mode == LockMode::kExclusive &&
        head_peek.txn_id != hdr.txn_id))) {
    ++stats_.mismatched_releases;
    metrics_.mismatched_releases->Inc();
    NETLOCK_TRACE(hdr.lock_id,
                  "SW release lock=%u mode=%d txn=%llu MISMATCH head "
                  "mode=%d txn=%llu -> dropped\n",
                  hdr.lock_id, (int)hdr.mode,
                  (unsigned long long)hdr.txn_id, (int)head_peek.mode,
                  (unsigned long long)head_peek.txn_id);
    if (trace_->Sampled(hdr.lock_id, hdr.txn_id)) {
      trace_->Instant(TraceTrack::kPipeline, "pipeline.mismatched_release",
                      net_.sim().now(),
                      TraceLog::RequestId(hdr.lock_id, hdr.txn_id));
    }
    return true;
  }

  // Pop pass. Within one simulated packet the resubmit is atomic (as is
  // the paper's grant-chain recirculation), so the validated head is still
  // the head here.
  pipeline_.Resubmit(pass);
  struct DequeueResult {
    bool suspended = false;
    std::uint32_t old_head = 0;
    std::uint32_t new_head = 0;
    std::uint32_t remaining = 0;
    bool notify_server = false;
  };
  const DequeueResult deq = meta_->ReadModifyWrite(
      pass, entry->meta_index, [&](LockMeta& m) -> DequeueResult {
        DequeueResult r;
        r.suspended = m.suspended;
        r.old_head = m.head;
        m.head = SharedQueue::Next(m.head, bounds);
        --m.count;
        if (hdr.mode == LockMode::kExclusive) {
          NETLOCK_CHECK(m.xcnt > 0);
          --m.xcnt;
        }
        r.new_head = m.head;
        r.remaining = m.count;
        if (m.count == 0 && m.overflow) {
          r.notify_server = true;
          m.fwd_since_notify = 0;
          m.last_notify = net_.sim().now();
        }
        return r;
      });

  NETLOCK_TRACE(hdr.lock_id,
                "SW release lock=%u mode=%d txn=%llu forced=%d stale=0 "
                "old_head=%u remaining=%u notify=%d\n",
                hdr.lock_id, (int)hdr.mode,
                (unsigned long long)hdr.txn_id, lease_forced,
                deq.old_head, deq.remaining, deq.notify_server);
  ++stats_.releases;
  metrics_.releases->Inc();

  // Emitted at every exit below, once the grant cascade has finished, so
  // the span's pass count covers the resubmit chain (local classes share
  // the enclosing member function's access).
  struct TraceOnExit {
    LockSwitch* sw;
    const LockHeader& hdr;
    PacketPass& pass;
    ~TraceOnExit() {
      if (!sw->trace_->Sampled(hdr.lock_id, hdr.txn_id)) return;
      const SimTime now = sw->net_.sim().now();
      sw->trace_->Complete(TraceTrack::kPipeline, "pipeline.release", now,
                           now,
                           TraceLog::RequestId(hdr.lock_id, hdr.txn_id),
                           {"passes", pass.pass_index() + 1});
    }
  } trace_on_exit{this, hdr, pass};

  if (deq.notify_server) {
    ++stats_.queue_empty_notifies;
    SendQueueEmptyNotify(hdr.lock_id, entry->home_server, bounds.size());
  }
  // A suspended lock dequeues (lease sweep) but never grants: the cascade
  // runs when Activate() lifts the suspension.
  if (deq.remaining == 0 || deq.suspended) return true;

  // Resubmit to examine the new head (Algorithm 2 lines 12-27). Grants
  // re-stamp the slot's timestamp (a read-modify-write, still one access):
  // the lease measures *holding* time from grant, not queueing time, so a
  // request that waited long and was just granted is not immediately
  // reclaimed by the lease sweep.
  pipeline_.Resubmit(pass);
  std::uint32_t pointer = deq.new_head;
  std::uint32_t remaining = deq.remaining;
  const SimTime now = net_.sim().now();
  // Head case: granted iff it is exclusive (S->E / E->E) or the released
  // lock was exclusive (E->S); only then re-stamp.
  const QueueSlot head =
      queue_->ReadModifyWrite(pass, pointer, [&](QueueSlot& slot) {
        QueueSlot copy = slot;
        if (slot.mode == LockMode::kExclusive ||
            hdr.mode == LockMode::kExclusive) {
          slot.timestamp = now;
        }
        return copy;
      });

  const auto grant_slot = [&](const QueueSlot& slot) {
    // `slot` is the pre-restamp copy: its timestamp is the enqueue time,
    // so the span is this waiter's full time in the shared queue.
    if (trace_->Sampled(hdr.lock_id, slot.txn_id)) {
      trace_->Complete(TraceTrack::kQueue, "queue.wait", slot.timestamp,
                       net_.sim().now(),
                       TraceLog::RequestId(hdr.lock_id, slot.txn_id));
    }
    LockHeader grant;
    grant.lock_id = hdr.lock_id;
    grant.mode = slot.mode;
    grant.txn_id = slot.txn_id;
    grant.client_node = slot.client_node;
    grant.tenant = slot.tenant;
    grant.timestamp = slot.timestamp;
    SendGrant(grant);
  };

  if (head.mode == LockMode::kExclusive) {
    if (hdr.mode == LockMode::kShared) {
      // Shared -> Exclusive: the last shared holder left; grant the head.
      // (If other shared holders remained, the head would still be shared —
      // granted entries are dequeued before waiting exclusives are reached.)
      grant_slot(head);
    } else {
      // Exclusive -> Exclusive: grant the next exclusive; no more resubmits.
      grant_slot(head);
    }
    return true;
  }
  // Head is shared.
  if (hdr.mode == LockMode::kShared) {
    // Shared -> Shared: the head was already granted when it entered the
    // queue (or by an earlier cascade); nothing to do.
    return true;
  }
  // Exclusive -> Shared: grant consecutive shared requests, one resubmit
  // per grant, until an exclusive request or the end of the queue.
  grant_slot(head);
  pointer = SharedQueue::Next(pointer, bounds);
  --remaining;
  while (remaining > 0) {
    pipeline_.Resubmit(pass);
    const QueueSlot next =
        queue_->ReadModifyWrite(pass, pointer, [&](QueueSlot& slot) {
          QueueSlot copy = slot;
          if (slot.mode == LockMode::kShared) slot.timestamp = now;
          return copy;
        });
    if (next.mode == LockMode::kExclusive) break;
    grant_slot(next);
    pointer = SharedQueue::Next(pointer, bounds);
    --remaining;
  }
  return true;
}

bool LockSwitch::DuplicateRelease(const LockHeader& hdr, PacketPass& pass) {
  if (release_filter_ == nullptr) return false;
  const std::uint64_t fp = ReleaseFingerprint(hdr);
  const std::size_t idx =
      static_cast<std::size_t>(fp % release_filter_->size());
  const bool dup = release_filter_->ReadModifyWrite(
      pass, idx, [&](std::uint64_t& reg) {
        if (reg == fp) return true;
        reg = fp;  // Collisions just evict: the filter is best-effort.
        return false;
      });
  if (dup) {
    ++stats_.duplicate_releases;
    metrics_.duplicate_releases->Inc();
    if (trace_->Sampled(hdr.lock_id, hdr.txn_id)) {
      trace_->Instant(TraceTrack::kPipeline, "pipeline.duplicate_release",
                      net_.sim().now(),
                      TraceLog::RequestId(hdr.lock_id, hdr.txn_id));
    }
  }
  return dup;
}

void LockSwitch::HandleResume(const LockHeader& hdr) {
  metrics_.sync_state_rtts->Inc();
  const SwitchLockEntry* entry = table_.Find(hdr.lock_id);
  if (entry == nullptr) return;  // Lock migrated away meanwhile.
  PacketPass pass = pipeline_.BeginPass();
  const LockBounds bounds = bounds_->Read(pass, entry->meta_index);
  const std::uint32_t remaining_q2 = hdr.aux;

  enum class Action { kNone, kRenotify };
  const Action action = meta_->ReadModifyWrite(
      pass, entry->meta_index, [&](LockMeta& m) -> Action {
        if (!m.overflow) return Action::kNone;
        if (remaining_q2 == 0 && m.fwd_since_notify == 0 &&
            m.count < bounds.size()) {
          m.overflow = false;  // Episode over; normal mode (§4.3).
          return Action::kNone;
        }
        if (m.count == 0) {
          m.fwd_since_notify = 0;
          m.last_notify = net_.sim().now();
          return Action::kRenotify;
        }
        return Action::kNone;  // Next emptying release re-notifies.
      });
  if (action == Action::kRenotify) {
    ++stats_.queue_empty_notifies;
    SendQueueEmptyNotify(hdr.lock_id, entry->home_server, bounds.size());
  }
}

void LockSwitch::HandleAcquirePrio(const LockHeader& hdr) {
  PacketPass pass = pipeline_.BeginPass();
  // Stage 0: tenant quota.
  if (!quota_->Admit(pass, hdr.tenant, net_.sim().now())) {
    ++stats_.rejected_quota;
    metrics_.rejected->Inc();
    LockHeader reject = hdr;
    reject.op = LockOp::kReject;
    reject.aux = static_cast<std::uint32_t>(AcquireResult::kRejected);
    Emit(MakeLockPacket(node_, hdr.client_node, reject));
    return;
  }
  const SwitchLockEntry* entry = table_.Find(hdr.lock_id);
  if (entry == nullptr) {
    SendToServer(hdr, RouteFor(hdr.lock_id), kFlagServerOwned);
    ++stats_.forwarded_unowned;
    metrics_.forwarded_unowned->Inc();
    return;
  }
  const Priority p = std::min<Priority>(
      hdr.priority, static_cast<Priority>(config_.num_priorities - 1));
  // Stage 0: this class's region boundaries.
  const LockBounds bounds = prio_bounds_[p]->Read(pass, entry->meta_index);

  // Stage 1: the aggregate register decides grant / queue / overflow in one
  // RMW. Grant rule (Section 4.4): immediately if nothing is held and
  // nothing waits; or, for a shared request, if the lock is held shared and
  // no exclusive request waits at the same or higher priority.
  enum class Outcome { kGrant, kEnqueue, kOverflow };
  const SimTime now = net_.sim().now();
  const Outcome outcome = agg_->ReadModifyWrite(
      pass, entry->meta_index, [&](AggState& a) {
        ++a.req_count;
        a.max_concurrent = std::max(
            a.max_concurrent, a.holders + a.waiting_total + 1);
        const bool free_now = a.holders == 0 && a.waiting_total == 0;
        std::uint32_t x_ahead = 0;
        for (Priority q = 0; q <= p; ++q) x_ahead += a.wait_x[q];
        const bool share_now =
            hdr.mode == LockMode::kShared && a.holders > 0 &&
            a.held_mode == LockMode::kShared && x_ahead == 0;
        if (free_now || share_now) {
          if (a.holders == 0) {
            a.held_mode = hdr.mode;
            a.held_txn = hdr.txn_id;
            a.held_since = now;
          }
          ++a.holders;
          return Outcome::kGrant;
        }
        if (a.wait_count[p] >= bounds.size()) return Outcome::kOverflow;
        ++a.wait_count[p];
        ++a.waiting_total;
        if (hdr.mode == LockMode::kExclusive) ++a.wait_x[p];
        return Outcome::kEnqueue;
      });
  if (outcome == Outcome::kGrant) {
    if (trace_->Sampled(hdr.lock_id, hdr.txn_id)) {
      trace_->Complete(TraceTrack::kPipeline, "pipeline.acquire", now, now,
                       TraceLog::RequestId(hdr.lock_id, hdr.txn_id),
                       {"passes", pass.pass_index() + 1}, {"granted", 1});
    }
    SendGrant(hdr);
    return;
  }
  if (outcome == Outcome::kOverflow) {
    // Class queue full: fall back to the server path (buffer-only), which
    // keeps the request alive; priority is preserved server-side FIFO only.
    SendToServer(hdr, entry->home_server, kFlagBufferOnly);
    ++stats_.forwarded_overflow;
    metrics_.q1_to_q2_forwards->Inc();
    if (trace_->Sampled(hdr.lock_id, hdr.txn_id)) {
      trace_->Instant(TraceTrack::kQueue, "queue.overflow_forward", now,
                      TraceLog::RequestId(hdr.lock_id, hdr.txn_id));
    }
    return;
  }
  metrics_.queued->Inc();

  // Stage 2+p: ring enqueue into this class's queue, caching the mode bit
  // so later conditional pops know the head's mode without a slot access.
  const std::uint32_t slot_index = prio_meta_[p]->ReadModifyWrite(
      pass, entry->meta_index, [&](PrioMeta& m) {
        const std::uint32_t index = m.tail;
        m.tail = SharedQueue::Next(m.tail, bounds);
        ++m.count;
        const std::uint32_t bit = index - bounds.left;
        if (hdr.mode == LockMode::kExclusive) {
          m.mode_mask |= (1ull << bit);
        } else {
          m.mode_mask &= ~(1ull << bit);
        }
        return index;
      });

  QueueSlot slot;
  slot.mode = hdr.mode;
  slot.txn_id = hdr.txn_id;
  slot.client_node = hdr.client_node;
  slot.tenant = hdr.tenant;
  slot.timestamp = now;
  queue_->Write(pass, slot_index, slot);
  if (trace_->Sampled(hdr.lock_id, hdr.txn_id)) {
    const std::uint64_t id = TraceLog::RequestId(hdr.lock_id, hdr.txn_id);
    trace_->Complete(TraceTrack::kPipeline, "pipeline.acquire", now, now,
                     id, {"passes", pass.pass_index() + 1},
                     {"granted", 0});
    trace_->Instant(TraceTrack::kQueue, "queue.enqueue", now, id,
                    {"slot", slot_index}, {"priority", p});
  }
}

bool LockSwitch::HandleReleasePrio(const LockHeader& hdr,
                                   bool lease_forced) {
  const SwitchLockEntry* entry = table_.Find(hdr.lock_id);
  if (entry == nullptr) {
    SendToServer(hdr, RouteFor(hdr.lock_id), kFlagServerOwned);
    return true;
  }
  PacketPass pass = pipeline_.BeginPass();
  // Stage 0: retransmission dedup (see HandleRelease).
  if (!lease_forced && DuplicateRelease(hdr, pass)) return false;
  enum class Action { kStale, kMismatch, kDone, kChain };
  const Action action = agg_->ReadModifyWrite(
      pass, entry->meta_index, [&](AggState& a) {
        if (a.holders == 0) return Action::kStale;
        // Stale-release validation (see HandleRelease): a release whose
        // mode — or, for an exclusive hold, transaction — does not match
        // the current holder is from an entry already reclaimed (lease
        // sweep) and must not decrement someone else's hold.
        if (!lease_forced &&
            (hdr.mode != a.held_mode ||
             (a.held_mode == LockMode::kExclusive &&
              hdr.txn_id != a.held_txn))) {
          return Action::kMismatch;
        }
        --a.holders;
        if (a.holders > 0) return Action::kDone;
        return a.waiting_total > 0 ? Action::kChain : Action::kDone;
      });
  if (action == Action::kStale || action == Action::kMismatch) {
    if (action == Action::kMismatch) {
      ++stats_.mismatched_releases;
      metrics_.mismatched_releases->Inc();
    } else {
      ++stats_.stale_releases;
      metrics_.stale_releases->Inc();
    }
    return true;
  }
  ++stats_.releases;
  metrics_.releases->Inc();
  if (action == Action::kChain) GrantChainPrio(*entry, pass);
  return true;
}

void LockSwitch::GrantChainPrio(const SwitchLockEntry& entry,
                                PacketPass& pass) {
  // One pop-and-grant per pass; the aggregate accounting for grant k is
  // applied by pass k+1's stage-1 RMW (carried resubmit metadata), and the
  // chain ends with a pass that applies the last update and pops nothing.
  // Strict priority: while batching shared grants, an exclusive head at
  // the highest non-empty class stops the batch.
  const SimTime now = net_.sim().now();
  bool first = true;
  struct Pending {
    bool valid = false;
    Priority prio = 0;
    LockMode mode = LockMode::kShared;
    TxnId txn = kInvalidTxn;
  };
  Pending prev;
  for (;;) {
    pipeline_.Resubmit(pass);
    // Stage 0: every class's boundaries (any class may pop this pass).
    LockBounds bounds[kMaxPriorities];
    for (int q = 0; q < config_.num_priorities; ++q) {
      bounds[q] = prio_bounds_[q]->Read(pass, entry.meta_index);
    }
    // Stage 1: apply the previous pass's grant; decide continuation.
    const bool proceed = agg_->ReadModifyWrite(
        pass, entry.meta_index, [&](AggState& a) {
          if (prev.valid) {
            ++a.holders;
            a.held_mode = prev.mode;
            a.held_txn = prev.txn;
            if (a.holders == 1) a.held_since = now;
            NETLOCK_CHECK(a.wait_count[prev.prio] > 0);
            --a.wait_count[prev.prio];
            --a.waiting_total;
            if (prev.mode == LockMode::kExclusive) {
              NETLOCK_CHECK(a.wait_x[prev.prio] > 0);
              --a.wait_x[prev.prio];
              return false;  // An exclusive grant ends the chain.
            }
          }
          return a.waiting_total > 0;
        });
    if (!proceed) return;
    // Stages 2..1+P: conditional pop from the first non-empty class; in
    // shared-batch mode an exclusive head there blocks further grants.
    bool popped = false;
    bool blocked = false;
    Priority pop_prio = 0;
    std::uint32_t pop_index = 0;
    LockMode pop_mode = LockMode::kShared;
    for (int q = 0; q < config_.num_priorities && !popped && !blocked;
         ++q) {
      prio_meta_[q]->ReadModifyWrite(
          pass, entry.meta_index, [&](PrioMeta& m) {
            if (m.count == 0) return 0;
            const std::uint32_t bit = m.head - bounds[q].left;
            const bool head_exclusive = (m.mode_mask >> bit) & 1ull;
            if (!first && head_exclusive) {
              blocked = true;
              return 0;
            }
            popped = true;
            pop_prio = static_cast<Priority>(q);
            pop_index = m.head;
            pop_mode = head_exclusive ? LockMode::kExclusive
                                      : LockMode::kShared;
            m.head = SharedQueue::Next(m.head, bounds[q]);
            --m.count;
            return 0;
          });
    }
    if (!popped) return;  // Blocked by an exclusive head (already applied).
    // Slot read + grant re-stamp (stage >= 2+P).
    const QueueSlot slot = queue_->ReadModifyWrite(
        pass, pop_index, [&](QueueSlot& s) {
          QueueSlot copy = s;
          s.timestamp = now;
          return copy;
        });
    NETLOCK_DCHECK(slot.mode == pop_mode);
    // `slot` is the pre-restamp copy: timestamp = enqueue time.
    if (trace_->Sampled(entry.lock_id, slot.txn_id)) {
      trace_->Complete(TraceTrack::kQueue, "queue.wait", slot.timestamp,
                       now, TraceLog::RequestId(entry.lock_id, slot.txn_id),
                       {"priority", pop_prio});
    }
    LockHeader grant;
    grant.lock_id = entry.lock_id;
    grant.mode = slot.mode;
    grant.txn_id = slot.txn_id;
    grant.client_node = slot.client_node;
    grant.tenant = slot.tenant;
    grant.timestamp = slot.timestamp;
    SendGrant(grant);
    prev = Pending{true, pop_prio, pop_mode, slot.txn_id};
    first = false;
  }
}

void LockSwitch::ClearExpired(SimTime lease, SweepScope scope) {
  // A failed switch processes nothing — the control plane's lease polling
  // keeps running, but sweeping the dead registers would cascade-grant
  // from a stale queue while the backup serves the same locks.
  if (failed_) return;
  TraceLog::PidScope pid_scope(*trace_, trace_pid_);
  const SimTime now = net_.sim().now();
  if (now < lease) return;
  const SimTime cutoff = now - lease;
  const bool do_releases = scope != SweepScope::kOverflowRearmOnly;
  const bool do_rearm = scope != SweepScope::kForcedReleasesOnly;
  if (config_.num_priorities == 1) {
    for (const LockId lock : table_.InstalledLocks()) {
      const SwitchLockEntry* entry = table_.Find(lock);
      while (do_releases) {
        const LockMeta& meta = meta_->ControlRead(entry->meta_index);
        if (meta.count == 0) break;
        const QueueSlot& head = queue_->ControlAt(meta.head);
        if (head.timestamp > cutoff) break;
        // Forced release of the expired head: reuses the data-plane release
        // path (the control plane injects the packet), which also cascades
        // grants to unblocked requests.
        LockHeader forced;
        forced.op = LockOp::kRelease;
        forced.lock_id = lock;
        forced.mode = head.mode;
        forced.txn_id = head.txn_id;
        forced.client_node = head.client_node;
        forced.aux = forced_release_nonce_++;
        HandleRelease(forced, /*lease_forced=*/true);
        // Chain head: the forced release must replicate like any other op.
        if (chain_next_ != kInvalidNode) ChainForward(forced, 0);
      }
      if (!do_rearm) continue;
      // Wedge recovery: if an overflow episode stalled with q1 empty — a
      // lost notify/push/resume — re-arm the handshake. Waiting a full
      // lease since the last notify guarantees no pushes are in flight
      // (they either landed long ago or were lost).
      LockMeta& meta = meta_->ControlRead(entry->meta_index);
      if (meta.overflow && meta.count == 0 &&
          meta.last_notify + lease <= now) {
        meta.fwd_since_notify = 0;
        meta.last_notify = now;
        ++stats_.queue_empty_notifies;
        SendQueueEmptyNotify(lock, entry->home_server,
                             bounds_->ControlRead(entry->meta_index).size());
      }
    }
  } else {
    for (const LockId lock : table_.InstalledLocks()) {
      const SwitchLockEntry* entry = table_.Find(lock);
      // Force-release expired holders one by one; the release path's grant
      // chain re-stamps new holders, terminating the loop. Waiting entries
      // are not expired here: when eventually granted, clients that moved
      // on release them immediately (unsolicited-grant release).
      for (int guard = 0; guard < 1 << 16; ++guard) {
        const AggState& agg = agg_->ControlRead(entry->meta_index);
        if (agg.holders == 0 || agg.held_since > cutoff) break;
        LockHeader forced;
        forced.op = LockOp::kRelease;
        forced.lock_id = lock;
        forced.mode = agg.held_mode;
        forced.txn_id = agg.held_txn;
        forced.aux = forced_release_nonce_++;
        HandleReleasePrio(forced, /*lease_forced=*/true);
      }
    }
  }
}

void LockSwitch::HarvestDemands(double window_sec,
                                std::vector<LockDemand>& out) {
  NETLOCK_CHECK(window_sec > 0.0);
  for (const LockId lock : table_.InstalledLocks()) {
    const SwitchLockEntry* entry = table_.Find(lock);
    if (config_.num_priorities == 1) {
      LockMeta& meta = meta_->ControlRead(entry->meta_index);
      out.push_back(LockDemand{
          lock, static_cast<double>(meta.req_count) / window_sec,
          std::max(1u, meta.max_count)});
      meta.req_count = 0;
      meta.max_count = std::max(1u, meta.count);
    } else {
      AggState& agg = agg_->ControlRead(entry->meta_index);
      out.push_back(LockDemand{
          lock, static_cast<double>(agg.req_count) / window_sec,
          std::max(1u, agg.max_concurrent)});
      agg.req_count = 0;
      agg.max_concurrent = std::max(1u, agg.holders + agg.waiting_total);
    }
  }
}

bool LockSwitch::IsSuspended(LockId lock) const {
  const SwitchLockEntry* entry = table_.Find(lock);
  if (entry == nullptr) return false;
  return meta_->ControlRead(entry->meta_index).suspended;
}

void LockSwitch::Suspend(LockId lock) {
  NETLOCK_CHECK(config_.num_priorities == 1);
  const SwitchLockEntry* entry = table_.Find(lock);
  NETLOCK_CHECK(entry != nullptr);
  PacketPass pass = pipeline_.BeginPass();
  meta_->ReadModifyWrite(pass, entry->meta_index, [](LockMeta& m) {
    m.suspended = true;
    return 0;
  });
}

void LockSwitch::Activate(LockId lock) {
  NETLOCK_CHECK(config_.num_priorities == 1);
  const SwitchLockEntry* entry = table_.Find(lock);
  NETLOCK_CHECK(entry != nullptr);
  PacketPass pass = pipeline_.BeginPass();
  const LockBounds bounds = bounds_->Read(pass, entry->meta_index);
  struct Wake {
    bool grant = false;
    std::uint32_t head = 0;
    std::uint32_t count = 0;
  };
  const Wake wake = meta_->ReadModifyWrite(
      pass, entry->meta_index, [&](LockMeta& m) -> Wake {
        if (!m.suspended) return {};
        m.suspended = false;
        return {m.count > 0, m.head, m.count};
      });
  if (!wake.grant) return;
  // Grant the head, and if it is shared, the whole leading shared batch —
  // the same cascade an exclusive release performs.
  const SimTime now = net_.sim().now();
  std::uint32_t pointer = wake.head;
  std::uint32_t remaining = wake.count;
  bool first = true;
  while (remaining > 0) {
    pipeline_.Resubmit(pass);
    const QueueSlot slot =
        queue_->ReadModifyWrite(pass, pointer, [&](QueueSlot& s) {
          QueueSlot copy = s;
          if (first || s.mode == LockMode::kShared) s.timestamp = now;
          return copy;
        });
    if (!first && slot.mode == LockMode::kExclusive) break;
    LockHeader grant;
    grant.lock_id = lock;
    grant.mode = slot.mode;
    grant.txn_id = slot.txn_id;
    grant.client_node = slot.client_node;
    grant.tenant = slot.tenant;
    grant.timestamp = slot.timestamp;
    SendGrant(grant);
    if (first && slot.mode == LockMode::kExclusive) break;
    first = false;
    pointer = SharedQueue::Next(pointer, bounds);
    --remaining;
  }
}

LockSwitch::DebugState LockSwitch::Debug(LockId lock) const {
  NETLOCK_CHECK(config_.num_priorities == 1);
  const SwitchLockEntry* entry = table_.Find(lock);
  NETLOCK_CHECK(entry != nullptr);
  DebugState state;
  state.meta = meta_->ControlRead(entry->meta_index);
  state.bounds = bounds_->ControlRead(entry->meta_index);
  if (state.meta.count > 0) {
    state.head = queue_->ControlAt(state.meta.head);
  }
  return state;
}

void LockSwitch::SendGrant(const LockHeader& request) {
  ++stats_.grants;
  metrics_.granted->Inc();
  if (grant_observer_) {
    grant_observer_(request.lock_id, request.txn_id, request.mode,
                    request.client_node);
  }
  LockHeader grant = request;
  grant.op = LockOp::kGrant;
  grant.aux = grant_nonce_++;  // Per-instance nonce (dedup filter key).
  if (db_route_) {
    // One-RTT mode (§4.1): mirror the grant to the database server, which
    // replies to the client with the item and the implied grant. Every
    // such fetch succeeds — the lock is already held.
    const NodeId db = db_route_(request.lock_id);
    if (db != kInvalidNode) {
      Emit(MakeLockPacket(node_, db, grant));
      return;
    }
  }
  Emit(MakeLockPacket(node_, request.client_node, grant));
}

void LockSwitch::SendToServer(LockHeader hdr, NodeId server,
                              std::uint8_t extra_flags) {
  if (server == kInvalidNode) return;  // Unroutable: drop (client retries).
  hdr.flags |= extra_flags;
  Emit(MakeLockPacket(node_, server, hdr));
}

void LockSwitch::SendQueueEmptyNotify(LockId lock, NodeId server,
                                      std::uint32_t free_slots) {
  if (server == kInvalidNode) return;
  LockHeader notify;
  notify.op = LockOp::kQueueEmpty;
  notify.lock_id = lock;
  notify.aux = free_slots;
  // Stamped so the server can discard stale or duplicated notifies: pushing
  // twice for one notify would overrun q1 (and bend FIFO order).
  notify.timestamp = net_.sim().now();
  Emit(MakeLockPacket(node_, server, notify));
}

void LockSwitch::Emit(Packet pkt) {
  if (suppress_emissions_) return;  // Chain head: the tail emits.
  if (src_override_ != kInvalidNode) {
    // Chain tail: emissions carry the head's address so releases and
    // retransmissions keep entering the chain at the head (switches
    // rewrite source addresses as a matter of course).
    pkt.src = src_override_;
  }
  if (config_.pipeline_latency == 0) {
    net_.Send(std::move(pkt));
    return;
  }
  net_.sim().Schedule(config_.pipeline_latency,
                      [this, pkt = std::move(pkt)]() { net_.Send(pkt); });
}

}  // namespace netlock
