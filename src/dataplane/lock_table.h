// Switch-side lock directory and shared-queue region allocator.
//
// The control plane (paper Section 4.3) decides which locks live in the
// switch and how many slots each gets; this module owns the mechanics:
// match-action mapping from lock ID to a per-lock metadata index, and
// allocation of contiguous [left, right) regions in the shared queue with
// free-list coalescing plus explicit defragmentation (the paper's "memory
// layout ... periodically reorganized to alleviate memory fragmentation").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dataplane/slot.h"

namespace netlock {

/// A contiguous free or allocated extent of the shared queue.
struct Extent {
  std::uint32_t left = 0;
  std::uint32_t right = 0;  ///< Exclusive.
  std::uint32_t size() const { return right - left; }
};

/// First-fit extent allocator with coalescing, over [0, capacity).
class RegionAllocator {
 public:
  explicit RegionAllocator(std::uint32_t capacity);

  /// Allocates a contiguous extent of `slots`; nullopt when fragmented or
  /// full. O(#free extents).
  std::optional<Extent> Allocate(std::uint32_t slots);

  /// Returns an extent obtained from Allocate().
  void Free(Extent extent);

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t free_slots() const { return free_slots_; }

  /// Largest single allocatable extent (shows fragmentation).
  std::uint32_t LargestFreeExtent() const;
  std::size_t NumFreeExtents() const { return free_.size(); }

 private:
  std::uint32_t capacity_;
  std::uint32_t free_slots_;
  std::map<std::uint32_t, std::uint32_t> free_;  ///< left -> right.
};

/// Per-lock entry installed in the switch.
struct SwitchLockEntry {
  LockId lock_id = kInvalidLock;
  std::uint32_t meta_index = 0;      ///< Index into the meta register arrays.
  NodeId home_server = kInvalidNode; ///< Server holding this lock's q2.
  /// Region per priority class (single-element for the default path).
  std::vector<LockBounds> regions;
};

/// Directory of switch-resident locks plus the home-server map for locks the
/// switch is *not* responsible for (it forwards those, Algorithm 1 line 12).
class SwitchLockTable {
 public:
  /// `max_locks` bounds the number of simultaneously installed locks (the
  /// size of the per-lock metadata register arrays).
  SwitchLockTable(std::uint32_t max_locks, std::uint32_t queue_capacity);

  /// Installs a lock with one region of `slots` per priority class.
  /// Returns nullptr when the meta table or the shared queue is exhausted.
  const SwitchLockEntry* Install(LockId lock, NodeId home_server,
                                 const std::vector<std::uint32_t>& slots);

  /// Removes an installed lock, freeing its regions. The caller must have
  /// drained its queues first.
  void Remove(LockId lock);

  const SwitchLockEntry* Find(LockId lock) const;

  /// Home server for any lock (installed or not); kInvalidNode if unmapped.
  NodeId HomeServer(LockId lock) const;
  void SetHomeServer(LockId lock, NodeId server);

  /// Rewrites an installed lock's home server (server failover).
  void ReassignHomeServer(LockId lock, NodeId server);

  std::size_t num_installed() const { return entries_.size(); }
  std::uint32_t free_slots() const { return allocator_.free_slots(); }
  std::uint32_t LargestFreeExtent() const {
    return allocator_.LargestFreeExtent();
  }
  std::uint32_t max_locks() const { return max_locks_; }

  /// All installed locks (control-plane iteration for reallocation).
  std::vector<LockId> InstalledLocks() const;

  /// Clears everything (switch restart).
  void Clear();

 private:
  std::uint32_t max_locks_;
  RegionAllocator allocator_;
  std::unordered_map<LockId, SwitchLockEntry> entries_;
  std::unordered_map<LockId, NodeId> home_server_;
  std::vector<std::uint32_t> free_meta_indices_;
};

}  // namespace netlock
