// Per-tenant quota enforcement in the data plane (paper Section 4.4,
// "Performance isolation with per-tenant quota").
//
// The paper names two implementations: meters that automatically throttle a
// tenant, and counters compared against quotas. Both are provided:
//   - kMeter: a token bucket refilled at the tenant's rate (the switch meter
//     abstraction); non-conforming requests are rejected.
//   - kCounter: a per-window request counter; requests beyond the window
//     quota are rejected until the window rolls over.
// Registers hold the bucket/counter state; one RMW per request.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "switchsim/pipeline.h"

namespace netlock {

enum class QuotaMode : std::uint8_t {
  kMeter = 0,
  kCounter = 1,
};

class TenantQuota {
 public:
  /// `max_tenants` sizes the register array (one cell per tenant).
  TenantQuota(Pipeline& pipeline, int stage, std::uint16_t max_tenants,
              QuotaMode mode = QuotaMode::kMeter);

  /// Configures tenant `t`: sustained rate in requests/second and burst
  /// size (meter mode) or per-window request budget (counter mode).
  void Configure(TenantId t, double rate_per_sec, std::uint32_t burst);

  /// Removes any limit for tenant `t` (the default for all tenants).
  void Unlimit(TenantId t);

  /// Data-plane check: true if the request conforms (and consumes budget).
  bool Admit(PacketPass& pass, TenantId t, SimTime now);

  /// Counter-mode window length.
  void set_window(SimTime window) { window_ = window; }

  std::uint64_t rejections() const { return rejections_; }

 private:
  struct Cell {
    bool limited = false;
    double tokens = 0.0;          ///< Meter: current tokens.
    double rate_per_ns = 0.0;     ///< Meter: refill rate.
    double burst = 0.0;           ///< Meter: bucket depth.
    std::uint32_t budget = 0;     ///< Counter: per-window budget.
    std::uint32_t used = 0;       ///< Counter: used in current window.
    SimTime last = 0;             ///< Meter: last refill; counter: window id.
  };

  QuotaMode mode_;
  SimTime window_ = 10 * kMillisecond;
  std::unique_ptr<RegisterArray<Cell>> cells_;
  std::uint64_t rejections_ = 0;
};

}  // namespace netlock
