#include "dataplane/shared_queue.h"

namespace netlock {

SharedQueue::SharedQueue(Pipeline& pipeline, int first_stage,
                         std::uint32_t capacity, std::uint32_t array_size)
    : capacity_(capacity), array_size_(array_size) {
  NETLOCK_CHECK(capacity > 0);
  NETLOCK_CHECK(array_size > 0);
  const std::uint32_t num_arrays = (capacity + array_size - 1) / array_size;
  arrays_.reserve(num_arrays);
  for (std::uint32_t i = 0; i < num_arrays; ++i) {
    const std::uint32_t this_size =
        std::min(array_size, capacity - i * array_size);
    // One array per stage; wraps within the stage budget if the pool is
    // larger than the remaining stages (multiple arrays can share a stage on
    // hardware as long as a pass touches at most one of them, which region
    // contiguity guarantees for a single slot access).
    const int stage = first_stage + static_cast<int>(i) %
                          std::max(1, pipeline.num_stages() - first_stage);
    arrays_.push_back(std::make_unique<RegisterArray<QueueSlot>>(
        pipeline, stage, this_size));
  }
}

const QueueSlot& SharedQueue::Read(PacketPass& pass, std::uint32_t index) {
  NETLOCK_CHECK(index < capacity_);
  return arrays_[index / array_size_]->Read(pass, index % array_size_);
}

void SharedQueue::Write(PacketPass& pass, std::uint32_t index,
                        const QueueSlot& slot) {
  NETLOCK_CHECK(index < capacity_);
  arrays_[index / array_size_]->Write(pass, index % array_size_, slot);
}

QueueSlot& SharedQueue::ControlAt(std::uint32_t index) {
  NETLOCK_CHECK(index < capacity_);
  return arrays_[index / array_size_]->ControlRead(index % array_size_);
}

void SharedQueue::ControlClear() {
  for (auto& array : arrays_) {
    for (std::size_t i = 0; i < array->size(); ++i) {
      array->ControlWrite(i, QueueSlot{});
    }
  }
}

}  // namespace netlock
