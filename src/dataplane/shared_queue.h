// The shared queue: multiple register arrays pooled into one index space
// (paper Section 4.2, Figure 5).
//
// Instead of statically binding a register array to each lock — which
// fragments memory and caps a queue at one stage's array size — slots
// 0..capacity-1 map onto a row of arrays, possibly in different pipeline
// stages, and each lock owns a runtime-adjustable contiguous region. Slot
// index i lives in array i / array_size at offset i % array_size.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dataplane/slot.h"
#include "switchsim/pipeline.h"

namespace netlock {

class SharedQueue {
 public:
  /// Builds ceil(capacity / array_size) register arrays starting at pipeline
  /// stage `first_stage`, one stage per array (mirroring the prototype's
  /// layout where pooled arrays occupy consecutive stages).
  SharedQueue(Pipeline& pipeline, int first_stage, std::uint32_t capacity,
              std::uint32_t array_size);

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t array_size() const { return array_size_; }
  std::size_t num_arrays() const { return arrays_.size(); }

  /// Data-plane slot read; one access to the owning array for this pass.
  const QueueSlot& Read(PacketPass& pass, std::uint32_t index);

  /// Data-plane slot write; one access to the owning array for this pass.
  void Write(PacketPass& pass, std::uint32_t index, const QueueSlot& slot);

  /// Data-plane read-modify-write of one slot (single ALU access).
  template <typename Fn>
  auto ReadModifyWrite(PacketPass& pass, std::uint32_t index, Fn&& fn) {
    NETLOCK_CHECK(index < capacity_);
    return arrays_[index / array_size_]->ReadModifyWrite(
        pass, index % array_size_, std::forward<Fn>(fn));
  }

  /// Control-plane access (queue migration, failure recovery, tests).
  QueueSlot& ControlAt(std::uint32_t index);

  /// Clears all slots (switch restart loses register state).
  void ControlClear();

  /// Advances an index circularly within [bounds.left, bounds.right).
  static std::uint32_t Next(std::uint32_t index, const LockBounds& bounds) {
    NETLOCK_DCHECK(index >= bounds.left && index < bounds.right);
    const std::uint32_t next = index + 1;
    return next == bounds.right ? bounds.left : next;
  }

 private:
  std::uint32_t capacity_;
  std::uint32_t array_size_;
  std::vector<std::unique_ptr<RegisterArray<QueueSlot>>> arrays_;
};

}  // namespace netlock
