// Register cell types used by the NetLock switch data plane.
//
// The hardware prototype stores each field in (paired) 32-bit registers
// spread across stages; we model the per-lock bookkeeping as one logical
// cell per array so that the single read-modify-write per pass — the
// constraint that drives Algorithm 2's resubmit structure — is preserved at
// the granularity the algorithm actually needs.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace netlock {

/// One slot of the shared request queue (paper Figure 4: "mode, transaction
/// ID, client IP", ~20 B with metadata). `tenant` and `timestamp` are the
/// "additional metadata such as timestamp and tenant ID" of Section 4.2.
struct QueueSlot {
  LockMode mode = LockMode::kExclusive;
  TxnId txn_id = kInvalidTxn;
  NodeId client_node = kInvalidNode;
  TenantId tenant = 0;
  SimTime timestamp = 0;

  friend bool operator==(const QueueSlot&, const QueueSlot&) = default;
};

/// Per-lock circular-queue bookkeeping for the default (single-priority,
/// Algorithm 2) path. `head`/`tail` are absolute indices into the shared
/// queue, constrained to the lock's [left, right) region.
struct LockMeta {
  std::uint32_t head = 0;
  std::uint32_t tail = 0;
  std::uint32_t count = 0;      ///< Queued entries (including granted holders).
  std::uint32_t xcnt = 0;       ///< Exclusive entries among them.
  bool overflow = false;        ///< q1 overflowed; new requests go to q2.
  /// Queue-but-don't-grant mode, used during switch failover (§4.5): a
  /// fresh backup suspends grants until pre-failure leases expire, and a
  /// restarted primary suspends each lock until the backup's queue for it
  /// drains ("we only grant locks from the backup switch until the queue
  /// in the backup switch gets empty").
  bool suspended = false;
  /// Buffer-only requests forwarded to the server since the last
  /// queue-empty notification. Nonzero means requests are in flight toward
  /// q2, so a "q2 drained" reply from the server must not end the overflow
  /// episode yet (see the protocol walkthrough in switch_dataplane.cc).
  std::uint32_t fwd_since_notify = 0;
  /// Demand counters for Algorithm 3 (§4.3: "NetLock maintains two counters
  /// to track r_i and c_i for each lock"). Harvested and reset by the
  /// control plane.
  std::uint64_t req_count = 0;   ///< Requests seen this window (r_i).
  std::uint32_t max_count = 1;   ///< Max queue occupancy this window (c_i).
  /// When the last queue-empty notification was sent. If a protocol packet
  /// (notify/push/resume) is lost, the lock would wedge with q1 empty and
  /// q2 full; the control plane's lease sweep re-arms the handshake once
  /// this is older than a lease (see LockSwitch::ClearExpired).
  SimTime last_notify = 0;
};

/// Runtime-adjustable region boundaries of a lock's queue in the shared
/// queue (paper Figure 5: left_B / right_B registers).
struct LockBounds {
  std::uint32_t left = 0;
  std::uint32_t right = 0;  ///< Exclusive.

  std::uint32_t size() const { return right - left; }
};

/// Priority classes supported by the register layout (bounded by pipeline
/// stages, paper §4.4: "the number of priorities is limited to the number
/// of stages").
inline constexpr int kMaxPriorities = 8;

/// Per-(lock, priority) waiting-queue bookkeeping for the priority path
/// (§4.4). `head`/`tail` are absolute shared-queue indices within the
/// class's region; `mode_mask` caches each ring position's mode (bit set =
/// exclusive) so a single RMW can decide "pop only if the head is shared"
/// without touching the slot array — regions are therefore capped at 64
/// slots per priority class (one mask register).
struct PrioMeta {
  std::uint32_t head = 0;
  std::uint32_t tail = 0;
  std::uint32_t count = 0;         ///< Waiting entries (popped at grant).
  std::uint64_t mode_mask = 0;     ///< Bit (pos - left): 1 = exclusive.
};

/// Per-lock aggregate register for the priority path: current holders plus
/// per-class waiting-exclusive counters, everything the stage-1 grant
/// decision needs in one RMW.
struct AggState {
  LockMode held_mode = LockMode::kShared;
  /// Holder's transaction when held exclusively (holders == 1). Lets the
  /// release path reject a stale exclusive release from a transaction that
  /// no longer holds the lock. Meaningless while held shared.
  TxnId held_txn = kInvalidTxn;
  std::uint32_t holders = 0;
  std::uint32_t waiting_total = 0;
  std::uint16_t wait_x[kMaxPriorities] = {};     ///< Waiting exclusives.
  std::uint16_t wait_count[kMaxPriorities] = {}; ///< All waiting, per class.
  SimTime held_since = 0;
  /// Demand counters (§4.3), as in LockMeta.
  std::uint64_t req_count = 0;
  std::uint32_t max_concurrent = 1;
};

}  // namespace netlock
