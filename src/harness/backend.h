// Execution-backend seam for the harness: run the same micro workload on
// either execution substrate.
//
//   * kSim — the deterministic discrete-event testbed (ServerOnly system:
//     clients -> LockServer over the simulated network), reporting
//     simulated-time throughput;
//   * kRt — the real-time backend (RtClientPool -> RtLockService on worker
//     threads), reporting wall-clock throughput.
//
// Both paths drive the same compiled LockEngine protocol core and draw
// per-session workload streams from identically seeded generators
// (seed * 1000003 + session), so a fixed-count run issues byte-identical
// request sequences on both backends — the basis of the cross-backend
// equivalence tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/sim_context.h"
#include "common/stats.h"
#include "common/timeseries.h"
#include "common/types.h"
#include "rt/rt_lock_service.h"
#include "workload/micro.h"

namespace netlock {

enum class BackendKind {
  kSim = 0,
  kRt = 1,
};

const char* ToString(BackendKind kind);

/// Parses "sim" / "rt" (as passed to --backend=). Returns false on anything
/// else, leaving *out untouched.
bool ParseBackendKind(const std::string& text, BackendKind* out);

struct BackendRunConfig {
  MicroConfig workload;
  std::uint64_t seed = 1;
  /// Total closed-loop sessions (must divide evenly by rt_client_threads).
  int sessions = 8;
  /// Committed transactions per session in fixed-count mode.
  std::uint64_t txns_per_session = 1000;

  /// Deadlock-handling policy at the lock manager (both backends). With
  /// kNone and an unordered workload, runs can deadlock — that is the
  /// point of the policies.
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kNone;
  /// Draw from UnorderedMicroWorkload (deduplicated but shuffled lock
  /// sets) and make the clients acquire in workload order instead of
  /// sorting — the deadlock-prone configuration the policies are tested
  /// under.
  bool unordered_workload = false;

  // Real-time sizing (ignored by the sim backend).
  int rt_cores = 2;
  int rt_client_threads = 2;
  bool rt_record_events = false;  ///< Keep the oracle replay log.
  bool rt_pin_threads = false;
  /// Batched hot path (`--batch-submit`): clients stage submits per core
  /// and flush with SubmitBatch once per poll iteration; the service
  /// stages grants and flushes completions once per drain. Off = the
  /// per-request legacy path, kept as the A/B baseline.
  bool rt_batch_submit = true;
  /// Worker idle tuning (see RtLockService::Options). Negative = keep the
  /// service defaults (spin-aggressive dedicated-host mode).
  int rt_spin_rounds = -1;
  int rt_yield_rounds = -1;
  std::int64_t rt_park_timeout_us = -1;

  // Real-time observability (ignored by the sim backend).
  /// Always-on sharded telemetry + flight recorder + live stats poller
  /// during the measurement window. Off = the bare hot path, for overhead
  /// comparison (`--telemetry=off`).
  bool rt_telemetry = true;
  /// Poller tick (ns). 0 = auto: measure/20, clamped to >= 5 ms.
  SimTime rt_poll_interval = 0;
  /// Non-empty = the poller serves live snapshots on this Unix socket
  /// (netlock_top attaches here).
  std::string rt_stats_socket;
  /// External flight recorder (tests inject one that outlives the service;
  /// it keeps recording the run's protocol events even with rt_telemetry
  /// off).
  FlightRecorder* rt_flight_recorder = nullptr;

  SimContext* context = nullptr;  ///< nullptr = process default.
};

struct BackendRunResult {
  /// Client-observed metrics over the recorded window. `duration` is
  /// simulated ns on kSim and wall-clock ns on kRt.
  RunMetrics metrics;
  std::uint64_t commits = 0;         ///< Unconditional (not gated).
  std::uint64_t service_grants = 0;  ///< Grants counted at the service.
  /// Client-observed policy aborts (no-wait / die + wound), unconditional.
  std::uint64_t aborts = 0;
  /// Of those, held-lock revocations (wound-wait only).
  std::uint64_t wounds = 0;
  /// Sum of committed transactions' lock-set sizes. Timing-independent on
  /// fixed-count runs, so the cross-backend tests compare it exactly.
  std::uint64_t committed_lock_grants = 0;
  /// Policy aborts counted at the service (refused acquires + wounds).
  std::uint64_t service_aborts = 0;
  /// Entries still queued at the service after the drain (0 = no leak).
  std::size_t residual_queue_depth = 0;
  double wall_seconds = 0.0;  ///< Measured window wall time (kRt only).
  /// Linearized engine event stream for oracle replay (kRt with
  /// rt_record_events only).
  std::vector<rt::RtEvent> events;
  /// Live time series sampled over the measurement window (kRt timed runs
  /// with rt_telemetry; feeds the report's "time_series" section).
  bool has_time_series = false;
  TimeSeriesStore time_series;
  /// Per-core grant totals over the whole run (kRt; per-core MLPS extras).
  std::vector<std::uint64_t> core_grants;
};

/// Runs until every session commits exactly txns_per_session transactions,
/// with recording on throughout. Deterministic request streams: the same
/// config produces the same per-session acquire sequences on both backends.
BackendRunResult RunMicroFixedCount(BackendKind kind,
                                    const BackendRunConfig& config);

/// Warm up for `warmup`, measure for `measure` (simulated ns on kSim,
/// wall-clock ns on kRt), then drain. txns_per_session is ignored.
BackendRunResult RunMicroTimed(BackendKind kind,
                               const BackendRunConfig& config,
                               SimTime warmup, SimTime measure);

}  // namespace netlock
