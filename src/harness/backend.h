// Execution-backend seam for the harness: run the same micro workload on
// either execution substrate.
//
//   * kSim — the deterministic discrete-event testbed (ServerOnly system:
//     clients -> LockServer over the simulated network), reporting
//     simulated-time throughput;
//   * kRt — the real-time backend (RtClientPool -> RtLockService on worker
//     threads), reporting wall-clock throughput.
//
// Both paths drive the same compiled LockEngine protocol core and draw
// per-session workload streams from identically seeded generators
// (seed * 1000003 + session), so a fixed-count run issues byte-identical
// request sequences on both backends — the basis of the cross-backend
// equivalence tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_context.h"
#include "common/stats.h"
#include "common/types.h"
#include "rt/rt_lock_service.h"
#include "workload/micro.h"

namespace netlock {

enum class BackendKind {
  kSim = 0,
  kRt = 1,
};

const char* ToString(BackendKind kind);

/// Parses "sim" / "rt" (as passed to --backend=). Returns false on anything
/// else, leaving *out untouched.
bool ParseBackendKind(const std::string& text, BackendKind* out);

struct BackendRunConfig {
  MicroConfig workload;
  std::uint64_t seed = 1;
  /// Total closed-loop sessions (must divide evenly by rt_client_threads).
  int sessions = 8;
  /// Committed transactions per session in fixed-count mode.
  std::uint64_t txns_per_session = 1000;

  // Real-time sizing (ignored by the sim backend).
  int rt_cores = 2;
  int rt_client_threads = 2;
  bool rt_record_events = false;  ///< Keep the oracle replay log.
  bool rt_pin_threads = false;

  SimContext* context = nullptr;  ///< nullptr = process default.
};

struct BackendRunResult {
  /// Client-observed metrics over the recorded window. `duration` is
  /// simulated ns on kSim and wall-clock ns on kRt.
  RunMetrics metrics;
  std::uint64_t commits = 0;         ///< Unconditional (not gated).
  std::uint64_t service_grants = 0;  ///< Grants counted at the service.
  /// Entries still queued at the service after the drain (0 = no leak).
  std::size_t residual_queue_depth = 0;
  double wall_seconds = 0.0;  ///< Measured window wall time (kRt only).
  /// Linearized engine event stream for oracle replay (kRt with
  /// rt_record_events only).
  std::vector<rt::RtEvent> events;
};

/// Runs until every session commits exactly txns_per_session transactions,
/// with recording on throughout. Deterministic request streams: the same
/// config produces the same per-session acquire sequences on both backends.
BackendRunResult RunMicroFixedCount(BackendKind kind,
                                    const BackendRunConfig& config);

/// Warm up for `warmup`, measure for `measure` (simulated ns on kSim,
/// wall-clock ns on kRt), then drain. txns_per_session is ignored.
BackendRunResult RunMicroTimed(BackendKind kind,
                               const BackendRunConfig& config,
                               SimTime warmup, SimTime measure);

}  // namespace netlock
