// Paper-style result reporting: aligned text tables and series printers
// shared by the figure-reproduction benches.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"

namespace netlock {

/// Accumulates rows and prints an aligned table to stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision.
std::string Fmt(double value, int precision = 2);

/// Formats nanoseconds as microseconds with two decimals.
std::string FmtUs(SimTime nanos);

/// Formats nanoseconds as milliseconds with three decimals.
std::string FmtMs(SimTime nanos);

/// Prints a figure banner ("=== Figure 10(a): ... ===").
void Banner(const std::string& title);

/// Prints the standard metric block the paper reports for a system run.
void PrintRunSummary(const std::string& label, const RunMetrics& metrics);

}  // namespace netlock
