// Paper-style result reporting: aligned text tables and series printers
// shared by the figure-reproduction benches, plus the machine-readable
// side: every bench also writes BENCH_<name>.json (run label, throughput,
// latency order statistics, and a dump of the global metrics registry) so
// the perf trajectory is trackable PR over PR without parsing text tables.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/sim_context.h"
#include "common/stats.h"
#include "harness/sampler.h"

namespace netlock {

/// Accumulates rows and prints an aligned table to stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision.
std::string Fmt(double value, int precision = 2);

/// Formats nanoseconds as microseconds with two decimals.
std::string FmtUs(SimTime nanos);

/// Formats nanoseconds as milliseconds with three decimals.
std::string FmtMs(SimTime nanos);

/// Prints a figure banner ("=== Figure 10(a): ... ===").
void Banner(const std::string& title);

/// Prints the standard metric block the paper reports for a system run.
void PrintRunSummary(const std::string& label, const RunMetrics& metrics);

// --- Machine-readable bench output -------------------------------------

/// Common CLI options every bench binary accepts.
struct BenchOptions {
  bool quick = false;       ///< Reduced sweeps/durations for CI.
  std::string json_dir = ".";  ///< Where BENCH_<name>.json is written.
  /// Request-lifecycle tracing: empty = disabled (the default; tracing off
  /// must not perturb bench numbers). Non-empty = record and write
  /// TRACE_<name>.json into this directory.
  std::string trace_dir;
  /// Record ~1/N of requests (`--trace-sample=1/N`); 1 = every request.
  std::uint32_t trace_sample = 1;
  /// Parallelism (`--jobs=N`). bench_all runs N figure binaries as
  /// concurrent processes; benches with independent sweep points run them
  /// on N threads via ParallelSweep. 1 = serial (the default); output is
  /// byte-identical either way outside wall-clock fields.
  int jobs = 1;
  /// Execution backend (`--backend=sim|rt`) for benches that can run the
  /// workload on either substrate (see harness/backend.h). Empty = the
  /// bench's own default; benches without a backend seam ignore it.
  std::string backend;
  /// Self-driving controller seam (`--controller=on|off`) for benches that
  /// compare static vs continuous reallocation. Empty = run both sides;
  /// benches without the seam ignore it.
  std::string controller;
};

/// Parses `--quick`, `--json-dir=DIR` (or `--json-dir DIR`),
/// `--trace-dir=DIR` (or `--trace-dir DIR`), `--trace-sample=1/N` (or
/// `=N`) and `--jobs=N` (or `--jobs N`), and ignores anything else, so
/// benches keep working under wrappers that add flags.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// One measured configuration within a bench (a table row / curve point).
struct BenchRun {
  std::string label;
  double throughput_mrps = 0.0;  ///< Lock throughput (0 when n/a).
  double txn_mtps = 0.0;         ///< Transaction throughput (0 when n/a).
  double mean_ns = 0.0;
  SimTime p50_ns = 0;
  SimTime p99_ns = 0;
  SimTime p999_ns = 0;
  std::uint64_t samples = 0;
  /// Bench-specific scalars ("shed", "switch_mrps", "retries", ...).
  std::vector<std::pair<std::string, double>> extra;
};

/// Accumulates runs and serializes the JSON report. Schema (version 2):
///   { "bench": "<name>", "schema_version": 2, "quick": <bool>,
///     "sim_wall_ms": <wall-clock ms since report construction>,
///     "sim_events_per_sec": <simulator events / wall second>,
///     "runs": [ {"label": ..., "throughput_mrps": ..., "txn_mtps": ...,
///                "latency_ns": {"mean","p50","p99","p999"},
///                "samples": ..., <extra scalars inline> } ... ],
///     "time_series": [ {"name": ..., "kind": "rate_per_sec"|"level",
///                       "interval_ns": ..., "t_s": [...],
///                       "values": [...]} ... ],   // when attached
///     "metrics": { "<registry name>": <value>, ... } }
///
/// sim_wall_ms / sim_events_per_sec track simulator throughput PR over PR;
/// they are the only wall-clock-dependent fields in the file (see
/// StripWallClockFields for deterministic comparison).
///
/// Constructing a report with options().trace_dir set enables the
/// context's TraceLog at the requested sampling rate; Write() then also
/// dumps TRACE_<name>.json next to the bench JSON.
class BenchReport {
 public:
  /// `context` = nullptr uses SimContext::Default(): the registry dumped
  /// into "metrics" and the TraceLog driven by --trace-dir.
  BenchReport(std::string bench_name, BenchOptions options,
              SimContext* context = nullptr);

  const BenchOptions& options() const { return options_; }
  bool quick() const { return options_.quick; }
  SimContext& context() const { return context_; }

  /// Adds an empty run and returns it for the caller to fill.
  BenchRun& AddRun(std::string label);

  /// Convenience: record a testbed RunMetrics under `label`.
  BenchRun& AddRun(std::string label, const RunMetrics& metrics);

  /// Convenience: throughput plus a latency distribution.
  BenchRun& AddRun(std::string label, double throughput_mrps,
                   const LatencyRecorder& latency);

  /// Copies the sampler's buckets into the report's "time_series" section.
  /// Call after the run completes (the sampler is not referenced later).
  void AttachTimeSeries(const TimeSeriesSampler& sampler);

  /// Same, from a raw bucket store (the rt stats poller's output).
  void AttachTimeSeries(const TimeSeriesStore& store);

  std::string ToJson() const;

  /// Writes BENCH_<name>.json into options().json_dir (the registry dump
  /// is taken at write time). Returns false (with a message on stderr) on
  /// I/O failure; benches treat that as fatal in main().
  bool Write() const;

 private:
  struct SeriesDump {
    std::string name;
    bool is_rate = false;
    SimTime interval_ns = 0;
    std::vector<double> t_s;
    std::vector<double> values;
  };

  std::string bench_name_;
  BenchOptions options_;
  SimContext& context_;
  std::chrono::steady_clock::time_point wall_start_;
  std::vector<BenchRun> runs_;
  std::vector<SeriesDump> time_series_;
};

/// Fills the latency fields of `run` from a recorder.
void FillLatency(BenchRun& run, const LatencyRecorder& latency);

/// Normalizes a bench report for byte comparison across runs: zeroes every
/// wall-clock-dependent field ("sim_wall_ms", "sim_events_per_sec", and
/// any per-run "*wall_ms"/"*events_per_sec" extras). Two runs of the same
/// build and seeds must produce identical output after this — serial or
/// parallel, --jobs=1 or --jobs=4.
std::string StripWallClockFields(const std::string& json);

}  // namespace netlock
