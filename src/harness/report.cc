#include "harness/report.h"

#include <cstdio>

namespace netlock {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtUs(SimTime nanos) {
  return Fmt(static_cast<double>(nanos) / kMicrosecond, 2);
}

std::string FmtMs(SimTime nanos) {
  return Fmt(static_cast<double>(nanos) / kMillisecond, 3);
}

void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRunSummary(const std::string& label, const RunMetrics& metrics) {
  std::printf(
      "%-12s lock %.3f MRPS | txn %.4f MTPS | lock lat avg %s p50 %s "
      "p99 %s | txn lat avg %s p99 %s | retries %llu\n",
      label.c_str(), metrics.LockThroughputMrps(),
      metrics.TxnThroughputMtps(),
      FormatNanos(static_cast<SimTime>(metrics.lock_latency.Mean())).c_str(),
      FormatNanos(metrics.lock_latency.Median()).c_str(),
      FormatNanos(metrics.lock_latency.P99()).c_str(),
      FormatNanos(static_cast<SimTime>(metrics.txn_latency.Mean())).c_str(),
      FormatNanos(metrics.txn_latency.P99()).c_str(),
      static_cast<unsigned long long>(metrics.retries));
}

}  // namespace netlock
