#include "harness/report.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/tracelog.h"

namespace netlock {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtUs(SimTime nanos) {
  return Fmt(static_cast<double>(nanos) / kMicrosecond, 2);
}

std::string FmtMs(SimTime nanos) {
  return Fmt(static_cast<double>(nanos) / kMillisecond, 3);
}

void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRunSummary(const std::string& label, const RunMetrics& metrics) {
  std::printf(
      "%-12s lock %.3f MRPS | txn %.4f MTPS | lock lat avg %s p50 %s "
      "p99 %s | txn lat avg %s p99 %s | retries %llu\n",
      label.c_str(), metrics.LockThroughputMrps(),
      metrics.TxnThroughputMtps(),
      FormatNanos(static_cast<SimTime>(metrics.lock_latency.Mean())).c_str(),
      FormatNanos(metrics.lock_latency.Median()).c_str(),
      FormatNanos(metrics.lock_latency.P99()).c_str(),
      FormatNanos(static_cast<SimTime>(metrics.txn_latency.Mean())).c_str(),
      FormatNanos(metrics.txn_latency.P99()).c_str(),
      static_cast<unsigned long long>(metrics.retries));
}

// --- Machine-readable bench output -------------------------------------

namespace {

/// Accepts "1/N" (the documented spelling: sample one request in N) or a
/// bare "N". Anything unparseable falls back to 1 (trace everything).
std::uint32_t ParseSampleSpec(const char* spec) {
  if (std::strncmp(spec, "1/", 2) == 0) spec += 2;
  const long n = std::strtol(spec, nullptr, 10);
  return n > 1 ? static_cast<std::uint32_t>(n) : 1;
}

}  // namespace

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      opts.quick = true;
    } else if (std::strncmp(arg, "--json-dir=", 11) == 0) {
      opts.json_dir = arg + 11;
    } else if (std::strcmp(arg, "--json-dir") == 0 && i + 1 < argc) {
      opts.json_dir = argv[++i];
    } else if (std::strncmp(arg, "--trace-dir=", 12) == 0) {
      opts.trace_dir = arg + 12;
    } else if (std::strcmp(arg, "--trace-dir") == 0 && i + 1 < argc) {
      opts.trace_dir = argv[++i];
    } else if (std::strncmp(arg, "--trace-sample=", 15) == 0) {
      opts.trace_sample = ParseSampleSpec(arg + 15);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      const long n = std::strtol(arg + 7, nullptr, 10);
      opts.jobs = n > 1 ? static_cast<int>(n) : 1;
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      opts.jobs = n > 1 ? static_cast<int>(n) : 1;
    } else if (std::strncmp(arg, "--backend=", 10) == 0) {
      opts.backend = arg + 10;
    } else if (std::strcmp(arg, "--backend") == 0 && i + 1 < argc) {
      opts.backend = argv[++i];
    } else if (std::strncmp(arg, "--controller=", 13) == 0) {
      opts.controller = arg + 13;
    } else if (std::strcmp(arg, "--controller") == 0 && i + 1 < argc) {
      opts.controller = argv[++i];
    }
    // Unknown flags are ignored: wrappers (ctest, benchmark harnesses)
    // append their own and benches must not die on them.
  }
  if (opts.json_dir.empty()) opts.json_dir = ".";
  return opts;
}

namespace {

/// JSON string escaping for the small character set our labels use.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Doubles print with enough digits to round-trip; NaN/Inf (never expected,
/// but a division by a zero duration would produce them) degrade to 0 so
/// the file stays valid JSON.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void FillLatency(BenchRun& run, const LatencyRecorder& latency) {
  run.mean_ns = latency.Mean();
  run.p50_ns = latency.Median();
  run.p99_ns = latency.P99();
  run.p999_ns = latency.P999();
  run.samples = latency.count();
}

BenchReport::BenchReport(std::string bench_name, BenchOptions options,
                         SimContext* context)
    : bench_name_(std::move(bench_name)),
      options_(std::move(options)),
      context_(context != nullptr ? *context : SimContext::Default()),
      wall_start_(std::chrono::steady_clock::now()) {
  if (!options_.trace_dir.empty()) {
    context_.trace().Enable(options_.trace_sample);
  }
}

BenchRun& BenchReport::AddRun(std::string label) {
  runs_.emplace_back();
  runs_.back().label = std::move(label);
  return runs_.back();
}

BenchRun& BenchReport::AddRun(std::string label, const RunMetrics& metrics) {
  BenchRun& run = AddRun(std::move(label));
  run.throughput_mrps = metrics.LockThroughputMrps();
  run.txn_mtps = metrics.TxnThroughputMtps();
  FillLatency(run, metrics.lock_latency);
  if (metrics.retries > 0) {
    run.extra.emplace_back("retries", static_cast<double>(metrics.retries));
  }
  if (!metrics.txn_latency.empty()) {
    run.extra.emplace_back("txn_p99_ns",
                           static_cast<double>(metrics.txn_latency.P99()));
  }
  return run;
}

BenchRun& BenchReport::AddRun(std::string label, double throughput_mrps,
                              const LatencyRecorder& latency) {
  BenchRun& run = AddRun(std::move(label));
  run.throughput_mrps = throughput_mrps;
  FillLatency(run, latency);
  return run;
}

void BenchReport::AttachTimeSeries(const TimeSeriesStore& store) {
  for (std::size_t s = 0; s < store.num_series(); ++s) {
    SeriesDump dump;
    dump.name = store.series_name(s);
    dump.is_rate = store.series_is_rate(s);
    dump.interval_ns = store.interval();
    dump.t_s.reserve(store.num_buckets());
    dump.values.reserve(store.num_buckets());
    for (std::size_t b = 0; b < store.num_buckets(); ++b) {
      dump.t_s.push_back(store.BucketTimeSeconds(b));
      dump.values.push_back(store.Value(s, b));
    }
    time_series_.push_back(std::move(dump));
  }
}

void BenchReport::AttachTimeSeries(const TimeSeriesSampler& sampler) {
  AttachTimeSeries(sampler.store());
}

std::string BenchReport::ToJson() const {
  // Simulator throughput: total events processed in this context over the
  // report's wall-clock lifetime. These two lines are the only
  // wall-dependent content in the file, each kept on its own line so
  // StripWallClockFields (and sed in CI) can normalize them.
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start_)
          .count();
  const double events = static_cast<double>(
      context_.metrics().Counter("sim.events_processed").value());
  const double events_per_sec = wall_ms > 0.0 ? events / (wall_ms / 1e3) : 0.0;

  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"" << JsonEscape(bench_name_) << "\",\n";
  out << "  \"schema_version\": 2,\n";
  out << "  \"quick\": " << (options_.quick ? "true" : "false") << ",\n";
  out << "  \"sim_wall_ms\": " << JsonNumber(wall_ms) << ",\n";
  out << "  \"sim_events_per_sec\": " << JsonNumber(events_per_sec) << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const BenchRun& run = runs_[i];
    out << "    {\"label\": \"" << JsonEscape(run.label) << "\", "
        << "\"throughput_mrps\": " << JsonNumber(run.throughput_mrps) << ", "
        << "\"txn_mtps\": " << JsonNumber(run.txn_mtps) << ", "
        << "\"latency_ns\": {"
        << "\"mean\": " << JsonNumber(run.mean_ns) << ", "
        << "\"p50\": " << run.p50_ns << ", "
        << "\"p99\": " << run.p99_ns << ", "
        << "\"p999\": " << run.p999_ns << "}, "
        << "\"samples\": " << run.samples;
    for (const auto& [key, value] : run.extra) {
      out << ", \"" << JsonEscape(key) << "\": " << JsonNumber(value);
    }
    out << "}" << (i + 1 < runs_.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  if (!time_series_.empty()) {
    out << "  \"time_series\": [\n";
    for (std::size_t s = 0; s < time_series_.size(); ++s) {
      const SeriesDump& dump = time_series_[s];
      out << "    {\"name\": \"" << JsonEscape(dump.name) << "\", "
          << "\"kind\": \"" << (dump.is_rate ? "rate_per_sec" : "level")
          << "\", "
          << "\"interval_ns\": " << dump.interval_ns << ",\n"
          << "     \"t_s\": [";
      for (std::size_t b = 0; b < dump.t_s.size(); ++b) {
        out << (b > 0 ? ", " : "") << JsonNumber(dump.t_s[b]);
      }
      out << "],\n     \"values\": [";
      for (std::size_t b = 0; b < dump.values.size(); ++b) {
        out << (b > 0 ? ", " : "") << JsonNumber(dump.values[b]);
      }
      out << "]}" << (s + 1 < time_series_.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
  }
  out << "  \"metrics\": {\n";
  const std::vector<MetricSample> samples = context_.metrics().Snapshot();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out << "    \"" << JsonEscape(samples[i].name)
        << "\": " << samples[i].value
        << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  out << "  }\n";
  out << "}\n";
  return out.str();
}

bool BenchReport::Write() const {
  const std::string path =
      options_.json_dir + "/BENCH_" + bench_name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "report: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << ToJson();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "report: write to %s failed\n", path.c_str());
    return false;
  }
  std::printf("[report] wrote %s\n", path.c_str());
  if (!options_.trace_dir.empty()) {
    const std::string trace_path =
        options_.trace_dir + "/TRACE_" + bench_name_ + ".json";
    const TraceLog& trace = context_.trace();
    if (!trace.WriteTo(trace_path)) return false;
    std::printf("[report] wrote %s (%zu events, %llu dropped)\n",
                trace_path.c_str(), trace.size(),
                static_cast<unsigned long long>(trace.dropped()));
  }
  return true;
}

std::string StripWallClockFields(const std::string& json) {
  // Zeroes the numeric value of any key ending in wall_ms / events_per_sec
  // ("sim_wall_ms", "sim_events_per_sec", per-run "events_per_sec"
  // extras). Hand-rolled rather than std::regex: this runs over multi-MB
  // reports in tests.
  static const char* const kKeys[] = {"wall_ms\": ", "events_per_sec\": "};
  std::string out = json;
  for (const char* key : kKeys) {
    const std::size_t key_len = std::strlen(key);
    std::size_t pos = 0;
    while ((pos = out.find(key, pos)) != std::string::npos) {
      const std::size_t value_start = pos + key_len;
      std::size_t value_end = value_start;
      while (value_end < out.size() &&
             (std::isdigit(static_cast<unsigned char>(out[value_end])) ||
              out[value_end] == '.' || out[value_end] == '-' ||
              out[value_end] == '+' || out[value_end] == 'e' ||
              out[value_end] == 'E')) {
        ++value_end;
      }
      out.replace(value_start, value_end - value_start, "0");
      pos = value_start + 1;
    }
  }
  return out;
}

}  // namespace netlock
