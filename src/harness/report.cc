#include "harness/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/tracelog.h"

namespace netlock {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtUs(SimTime nanos) {
  return Fmt(static_cast<double>(nanos) / kMicrosecond, 2);
}

std::string FmtMs(SimTime nanos) {
  return Fmt(static_cast<double>(nanos) / kMillisecond, 3);
}

void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRunSummary(const std::string& label, const RunMetrics& metrics) {
  std::printf(
      "%-12s lock %.3f MRPS | txn %.4f MTPS | lock lat avg %s p50 %s "
      "p99 %s | txn lat avg %s p99 %s | retries %llu\n",
      label.c_str(), metrics.LockThroughputMrps(),
      metrics.TxnThroughputMtps(),
      FormatNanos(static_cast<SimTime>(metrics.lock_latency.Mean())).c_str(),
      FormatNanos(metrics.lock_latency.Median()).c_str(),
      FormatNanos(metrics.lock_latency.P99()).c_str(),
      FormatNanos(static_cast<SimTime>(metrics.txn_latency.Mean())).c_str(),
      FormatNanos(metrics.txn_latency.P99()).c_str(),
      static_cast<unsigned long long>(metrics.retries));
}

// --- Machine-readable bench output -------------------------------------

namespace {

/// Accepts "1/N" (the documented spelling: sample one request in N) or a
/// bare "N". Anything unparseable falls back to 1 (trace everything).
std::uint32_t ParseSampleSpec(const char* spec) {
  if (std::strncmp(spec, "1/", 2) == 0) spec += 2;
  const long n = std::strtol(spec, nullptr, 10);
  return n > 1 ? static_cast<std::uint32_t>(n) : 1;
}

}  // namespace

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      opts.quick = true;
    } else if (std::strncmp(arg, "--json-dir=", 11) == 0) {
      opts.json_dir = arg + 11;
    } else if (std::strcmp(arg, "--json-dir") == 0 && i + 1 < argc) {
      opts.json_dir = argv[++i];
    } else if (std::strncmp(arg, "--trace-dir=", 12) == 0) {
      opts.trace_dir = arg + 12;
    } else if (std::strcmp(arg, "--trace-dir") == 0 && i + 1 < argc) {
      opts.trace_dir = argv[++i];
    } else if (std::strncmp(arg, "--trace-sample=", 15) == 0) {
      opts.trace_sample = ParseSampleSpec(arg + 15);
    }
    // Unknown flags are ignored: wrappers (ctest, benchmark harnesses)
    // append their own and benches must not die on them.
  }
  if (opts.json_dir.empty()) opts.json_dir = ".";
  return opts;
}

namespace {

/// JSON string escaping for the small character set our labels use.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Doubles print with enough digits to round-trip; NaN/Inf (never expected,
/// but a division by a zero duration would produce them) degrade to 0 so
/// the file stays valid JSON.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void FillLatency(BenchRun& run, const LatencyRecorder& latency) {
  run.mean_ns = latency.Mean();
  run.p50_ns = latency.Median();
  run.p99_ns = latency.P99();
  run.p999_ns = latency.P999();
  run.samples = latency.count();
}

BenchReport::BenchReport(std::string bench_name, BenchOptions options)
    : bench_name_(std::move(bench_name)), options_(std::move(options)) {
  if (!options_.trace_dir.empty()) {
    TraceLog::Global().Enable(options_.trace_sample);
  }
}

BenchRun& BenchReport::AddRun(std::string label) {
  runs_.emplace_back();
  runs_.back().label = std::move(label);
  return runs_.back();
}

BenchRun& BenchReport::AddRun(std::string label, const RunMetrics& metrics) {
  BenchRun& run = AddRun(std::move(label));
  run.throughput_mrps = metrics.LockThroughputMrps();
  run.txn_mtps = metrics.TxnThroughputMtps();
  FillLatency(run, metrics.lock_latency);
  if (metrics.retries > 0) {
    run.extra.emplace_back("retries", static_cast<double>(metrics.retries));
  }
  if (!metrics.txn_latency.empty()) {
    run.extra.emplace_back("txn_p99_ns",
                           static_cast<double>(metrics.txn_latency.P99()));
  }
  return run;
}

BenchRun& BenchReport::AddRun(std::string label, double throughput_mrps,
                              const LatencyRecorder& latency) {
  BenchRun& run = AddRun(std::move(label));
  run.throughput_mrps = throughput_mrps;
  FillLatency(run, latency);
  return run;
}

void BenchReport::AttachTimeSeries(const TimeSeriesSampler& sampler) {
  for (std::size_t s = 0; s < sampler.num_series(); ++s) {
    SeriesDump dump;
    dump.name = sampler.series_name(s);
    dump.is_rate = sampler.series_is_rate(s);
    dump.interval_ns = sampler.interval();
    dump.t_s.reserve(sampler.num_buckets());
    dump.values.reserve(sampler.num_buckets());
    for (std::size_t b = 0; b < sampler.num_buckets(); ++b) {
      dump.t_s.push_back(sampler.BucketTimeSeconds(b));
      dump.values.push_back(sampler.Value(s, b));
    }
    time_series_.push_back(std::move(dump));
  }
}

std::string BenchReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"" << JsonEscape(bench_name_) << "\",\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"quick\": " << (options_.quick ? "true" : "false") << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const BenchRun& run = runs_[i];
    out << "    {\"label\": \"" << JsonEscape(run.label) << "\", "
        << "\"throughput_mrps\": " << JsonNumber(run.throughput_mrps) << ", "
        << "\"txn_mtps\": " << JsonNumber(run.txn_mtps) << ", "
        << "\"latency_ns\": {"
        << "\"mean\": " << JsonNumber(run.mean_ns) << ", "
        << "\"p50\": " << run.p50_ns << ", "
        << "\"p99\": " << run.p99_ns << ", "
        << "\"p999\": " << run.p999_ns << "}, "
        << "\"samples\": " << run.samples;
    for (const auto& [key, value] : run.extra) {
      out << ", \"" << JsonEscape(key) << "\": " << JsonNumber(value);
    }
    out << "}" << (i + 1 < runs_.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  if (!time_series_.empty()) {
    out << "  \"time_series\": [\n";
    for (std::size_t s = 0; s < time_series_.size(); ++s) {
      const SeriesDump& dump = time_series_[s];
      out << "    {\"name\": \"" << JsonEscape(dump.name) << "\", "
          << "\"kind\": \"" << (dump.is_rate ? "rate_per_sec" : "level")
          << "\", "
          << "\"interval_ns\": " << dump.interval_ns << ",\n"
          << "     \"t_s\": [";
      for (std::size_t b = 0; b < dump.t_s.size(); ++b) {
        out << (b > 0 ? ", " : "") << JsonNumber(dump.t_s[b]);
      }
      out << "],\n     \"values\": [";
      for (std::size_t b = 0; b < dump.values.size(); ++b) {
        out << (b > 0 ? ", " : "") << JsonNumber(dump.values[b]);
      }
      out << "]}" << (s + 1 < time_series_.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
  }
  out << "  \"metrics\": {\n";
  const std::vector<MetricSample> samples =
      MetricsRegistry::Global().Snapshot();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out << "    \"" << JsonEscape(samples[i].name)
        << "\": " << samples[i].value
        << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  out << "  }\n";
  out << "}\n";
  return out.str();
}

bool BenchReport::Write() const {
  const std::string path =
      options_.json_dir + "/BENCH_" + bench_name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "report: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << ToJson();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "report: write to %s failed\n", path.c_str());
    return false;
  }
  std::printf("[report] wrote %s\n", path.c_str());
  if (!options_.trace_dir.empty()) {
    const std::string trace_path =
        options_.trace_dir + "/TRACE_" + bench_name_ + ".json";
    if (!TraceLog::Global().WriteTo(trace_path)) return false;
    std::printf("[report] wrote %s (%zu events, %llu dropped)\n",
                trace_path.c_str(), TraceLog::Global().size(),
                static_cast<unsigned long long>(TraceLog::Global().dropped()));
  }
  return true;
}

}  // namespace netlock
