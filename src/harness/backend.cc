#include "harness/backend.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "harness/testbed.h"
#include "rt/rt_client.h"
#include "rt/stats_poller.h"
#include "substrate/execution_substrate.h"

namespace netlock {
namespace {

std::unique_ptr<WorkloadGenerator> MakeMicroWorkload(
    const BackendRunConfig& config) {
  if (config.unordered_workload) {
    return std::make_unique<UnorderedMicroWorkload>(config.workload);
  }
  return std::make_unique<MicroWorkload>(config.workload);
}

TestbedConfig SimConfigFor(const BackendRunConfig& config) {
  TestbedConfig tb;
  tb.system = SystemKind::kServerOnly;
  tb.context = config.context;
  tb.client_machines = 1;
  tb.sessions_per_machine = config.sessions;
  tb.lock_servers = 1;
  tb.seed = config.seed;
  tb.workload_factory = [config](int) { return MakeMicroWorkload(config); };
  tb.txn_config.think_time = 0;
  tb.txn_config.inter_txn_gap = 0;
  tb.txn_config.preserve_workload_order = config.unordered_workload;
  tb.server_config.deadlock_policy = config.deadlock_policy;
  // No client-side timeouts: a retry would abort the transaction and skew
  // the request stream away from the rt run's, breaking exact comparison.
  tb.client_retry_timeout = 10 * kSecond;
  tb.lease = 10 * kSecond;
  return tb;
}

/// Sums the per-engine policy counters and the servers' abort stats into
/// the result (sim backend).
void CollectSimPolicyCounters(Testbed& testbed, BackendRunResult& result) {
  for (int i = 0; i < testbed.num_engines(); ++i) {
    result.aborts += testbed.engine(i).aborts();
    result.wounds += testbed.engine(i).wounds();
    result.committed_lock_grants += testbed.engine(i).committed_lock_grants();
  }
  ServerOnlyManager& manager = testbed.server_only();
  for (int s = 0; s < manager.num_servers(); ++s) {
    const LockServer::Stats& stats = manager.server(s).stats();
    result.service_aborts += stats.aborts_refused + stats.wounds;
  }
}

void DrainSim(Testbed& testbed) {
  // Lease polling keeps the event queue nonempty forever, so run in slices
  // until the engines go idle rather than until the queue drains.
  for (;;) {
    bool all_idle = true;
    for (int i = 0; i < testbed.num_engines(); ++i) {
      if (!testbed.engine(i).idle()) {
        all_idle = false;
        break;
      }
    }
    if (all_idle) return;
    testbed.sim().RunUntil(testbed.sim().now() + kMillisecond);
  }
}

struct RtRig {
  explicit RtRig(const BackendRunConfig& config)
      : registry(config.context != nullptr
                     ? config.context->metrics()
                     : SimContext::Default().metrics()),
        service(ServiceOptions(config), substrate),
        pool(service, substrate, ClientConfig(config),
             [config](int) { return MakeMicroWorkload(config); }) {}

  static rt::RtLockService::Options ServiceOptions(
      const BackendRunConfig& config) {
    NETLOCK_CHECK(config.rt_client_threads >= 1);
    NETLOCK_CHECK(config.sessions % config.rt_client_threads == 0);
    rt::RtLockService::Options options;
    options.cores = config.rt_cores;
    options.num_clients = config.rt_client_threads;
    options.record_events = config.rt_record_events;
    options.pin_threads = config.rt_pin_threads;
    options.batch_submit = config.rt_batch_submit;
    if (config.rt_spin_rounds >= 0) {
      options.spin_rounds = config.rt_spin_rounds;
    }
    if (config.rt_yield_rounds >= 0) {
      options.yield_rounds = config.rt_yield_rounds;
    }
    if (config.rt_park_timeout_us >= 0) {
      options.park_timeout =
          std::chrono::microseconds(config.rt_park_timeout_us);
    }
    options.deadlock_policy = config.deadlock_policy;
    options.telemetry = config.rt_telemetry;
    options.recorder = config.rt_flight_recorder;
    options.context = config.context;
    return options;
  }

  static rt::RtClientConfig ClientConfig(const BackendRunConfig& config) {
    rt::RtClientConfig cc;
    cc.sessions_per_client = config.sessions / config.rt_client_threads;
    cc.txns_per_session = config.txns_per_session;
    cc.seed = config.seed;
    cc.batch_submit = config.rt_batch_submit;
    cc.telemetry = config.rt_telemetry;
    return cc;
  }

  void Finish(BackendRunResult& result) {
    pool.Join();
    service.Stop();
    if (std::getenv("NETLOCK_RT_DEBUG") != nullptr) {
      const rt::RtLockService::Stats ts = service.TotalStats();
      std::fprintf(stderr,
                   "[rt-debug] req=%llu grants=%llu batches=%llu "
                   "max_batch=%llu flushes=%llu staged=%llu\n",
                   (unsigned long long)ts.requests,
                   (unsigned long long)ts.grants,
                   (unsigned long long)ts.batches,
                   (unsigned long long)ts.max_batch,
                   (unsigned long long)ts.flushes,
                   (unsigned long long)ts.staged_completions);
      for (int c = 0; c < service.cores(); ++c) {
        const rt::RtExecutor::IdleStats idle =
            service.executor().idle_stats(c);
        std::fprintf(stderr,
                     "[rt-debug] core%d work=%llu spins=%llu yields=%llu "
                     "parks=%llu\n",
                     c, (unsigned long long)idle.work_rounds,
                     (unsigned long long)idle.spins,
                     (unsigned long long)idle.yields,
                     (unsigned long long)idle.parks);
      }
    }
    pool.PublishTelemetry(registry);
    result.metrics = pool.Collect();
    result.commits = pool.TotalCommits();
    result.aborts = pool.TotalAborts();
    result.wounds = pool.TotalWounds();
    result.committed_lock_grants = pool.TotalCommittedLockGrants();
    const rt::RtLockService::Stats totals = service.TotalStats();
    result.service_grants = totals.grants;
    result.service_aborts = totals.aborts + totals.wounds;
    result.residual_queue_depth = service.TotalQueueDepth();
    result.events = service.DrainEvents();
    result.core_grants.reserve(static_cast<std::size_t>(service.cores()));
    for (int c = 0; c < service.cores(); ++c) {
      result.core_grants.push_back(service.CoreStats(c).grants);
    }
  }

  RtSubstrate substrate;
  MetricsRegistry& registry;
  rt::RtLockService service;
  rt::RtClientPool pool;
};

/// One live snapshot frame in the netlock_top text protocol:
///   snap ts=<ns> cores=<N> clients=<M>
///   core <i> grants= requests= batches= depth= work= spins= yields= parks=
///   lat <lock|txn> p50= p90= p99= p999= n=
///   end
std::string BuildRtSnapshot(RtRig& rig) {
  std::ostringstream out;
  char line[256];
  const int cores = rig.service.cores();
  std::snprintf(line, sizeof(line),
                "snap ts=%" PRIu64 " cores=%d clients=%d\n",
                static_cast<std::uint64_t>(rig.substrate.Now()), cores,
                rig.service.num_clients());
  out << line;
  for (int c = 0; c < cores; ++c) {
    const rt::RtLockService::Stats s = rig.service.CoreStats(c);
    const rt::RtExecutor::IdleStats idle = rig.service.executor().idle_stats(c);
    std::snprintf(line, sizeof(line),
                  "core %d grants=%" PRIu64 " requests=%" PRIu64
                  " batches=%" PRIu64 " depth=%zu work=%" PRIu64
                  " spins=%" PRIu64 " yields=%" PRIu64 " parks=%" PRIu64 "\n",
                  c, s.grants, s.requests, s.batches,
                  rig.service.MailboxDepthApprox(c), idle.work_rounds,
                  idle.spins, idle.yields, idle.parks);
    out << line;
  }
  const TelemetryDomain& clients = rig.pool.telemetry_domain();
  for (const char* name : {"rt.lock_latency", "rt.txn_latency"}) {
    TelemetryHistogram h;
    if (!clients.FindHistogram(name, &h)) continue;
    const LogHistogram merged = clients.HistogramMerged(h);
    std::snprintf(line, sizeof(line),
                  "lat %s p50=%" PRIu64 " p90=%" PRIu64 " p99=%" PRIu64
                  " p999=%" PRIu64 " n=%" PRIu64 "\n",
                  name == std::string("rt.lock_latency") ? "lock" : "txn",
                  merged.Percentile(0.50), merged.Percentile(0.90),
                  merged.Percentile(0.99), merged.Percentile(0.999),
                  merged.count());
    out << line;
  }
  out << "end\n";
  return out.str();
}

/// Builds, watches, and starts the measurement-window poller for a timed
/// rt run. Returns nullptr when telemetry is off.
std::unique_ptr<rt::RtStatsPoller> StartRtPoller(
    RtRig& rig, const BackendRunConfig& config, SimTime measure) {
  if (!config.rt_telemetry) return nullptr;
  rt::RtStatsPoller::Options po;
  SimTime interval = config.rt_poll_interval;
  if (interval == 0) {
    interval = measure / 20;
    if (interval < 5 * kMillisecond) interval = 5 * kMillisecond;
  }
  po.interval = std::chrono::nanoseconds(interval);
  po.socket_path = config.rt_stats_socket;
  SimContext& context =
      config.context != nullptr ? *config.context : SimContext::Default();
  auto poller =
      std::make_unique<rt::RtStatsPoller>(po, context.metrics());
  poller->AddDomain(&rig.service.telemetry_domain());
  poller->AddDomain(&rig.pool.telemetry_domain());
  poller->Watch("rt.requests");
  poller->Watch("rt.grants");
  poller->Watch("rt.releases");
  poller->Watch("rt.commits");
  poller->WatchGauge("rt.mailbox_depth");
  poller->WatchGauge("rt.lock_latency.p99_ns");
  poller->SetSnapshotProvider([&rig]() { return BuildRtSnapshot(rig); });
  poller->Start(rig.substrate.Now());
  return poller;
}

}  // namespace

const char* ToString(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSim:
      return "sim";
    case BackendKind::kRt:
      return "rt";
  }
  return "?";
}

bool ParseBackendKind(const std::string& text, BackendKind* out) {
  if (text == "sim") {
    *out = BackendKind::kSim;
    return true;
  }
  if (text == "rt") {
    *out = BackendKind::kRt;
    return true;
  }
  return false;
}

BackendRunResult RunMicroFixedCount(BackendKind kind,
                                    const BackendRunConfig& config) {
  NETLOCK_CHECK(config.txns_per_session > 0);
  BackendRunResult result;
  if (kind == BackendKind::kSim) {
    TestbedConfig tb = SimConfigFor(config);
    tb.txn_config.max_txns = config.txns_per_session;
    Testbed testbed(tb);
    testbed.SetRecording(true);
    const SimTime start = testbed.sim().now();
    testbed.StartEngines();
    DrainSim(testbed);
    result.metrics = testbed.Collect(testbed.sim().now() - start);
    result.commits = result.metrics.txn_commits;
    result.service_grants = testbed.server_only().Grants();
    CollectSimPolicyCounters(testbed, result);
    return result;
  }
  RtRig rig(config);
  rig.pool.SetRecording(true);
  rig.service.Start();
  const SimTime start = rig.substrate.Now();
  rig.pool.Start();
  rig.Finish(result);
  const SimTime elapsed = rig.substrate.Now() - start;
  result.metrics.duration = elapsed;
  result.wall_seconds = static_cast<double>(elapsed) / 1e9;
  return result;
}

BackendRunResult RunMicroTimed(BackendKind kind,
                               const BackendRunConfig& config,
                               SimTime warmup, SimTime measure) {
  BackendRunResult result;
  if (kind == BackendKind::kSim) {
    Testbed testbed(SimConfigFor(config));
    result.metrics = testbed.Run(warmup, measure);
    testbed.StopEngines();
    result.commits = result.metrics.txn_commits;
    result.service_grants = testbed.server_only().Grants();
    CollectSimPolicyCounters(testbed, result);
    return result;
  }
  BackendRunConfig timed = config;
  timed.txns_per_session = 0;  // Sessions run until StopIssuing().
  RtRig rig(timed);
  rig.service.Start();
  rig.pool.Start();
  std::this_thread::sleep_for(std::chrono::nanoseconds(warmup));
  // The poller covers only the measurement window, so the time series is
  // warm-up-free like the RunMetrics recorders.
  std::unique_ptr<rt::RtStatsPoller> poller =
      StartRtPoller(rig, timed, measure);
  rig.pool.SetRecording(true);
  const SimTime t0 = rig.substrate.Now();
  std::this_thread::sleep_for(std::chrono::nanoseconds(measure));
  rig.pool.SetRecording(false);
  const SimTime t1 = rig.substrate.Now();
  rig.pool.StopIssuing();
  if (poller != nullptr) poller->Stop();
  rig.Finish(result);
  if (poller != nullptr) {
    result.has_time_series = true;
    result.time_series = poller->store();
  }
  result.metrics.duration = t1 - t0;
  result.wall_seconds = static_cast<double>(t1 - t0) / 1e9;
  return result;
}

}  // namespace netlock
