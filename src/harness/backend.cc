#include "harness/backend.h"

#include <chrono>
#include <memory>
#include <thread>

#include "common/check.h"
#include "harness/testbed.h"
#include "rt/rt_client.h"
#include "substrate/execution_substrate.h"

namespace netlock {
namespace {

TestbedConfig SimConfigFor(const BackendRunConfig& config) {
  TestbedConfig tb;
  tb.system = SystemKind::kServerOnly;
  tb.context = config.context;
  tb.client_machines = 1;
  tb.sessions_per_machine = config.sessions;
  tb.lock_servers = 1;
  tb.seed = config.seed;
  tb.workload_factory = [workload = config.workload](int) {
    return std::make_unique<MicroWorkload>(workload);
  };
  tb.txn_config.think_time = 0;
  tb.txn_config.inter_txn_gap = 0;
  // No client-side timeouts: a retry would abort the transaction and skew
  // the request stream away from the rt run's, breaking exact comparison.
  tb.client_retry_timeout = 10 * kSecond;
  tb.lease = 10 * kSecond;
  return tb;
}

void DrainSim(Testbed& testbed) {
  // Lease polling keeps the event queue nonempty forever, so run in slices
  // until the engines go idle rather than until the queue drains.
  for (;;) {
    bool all_idle = true;
    for (int i = 0; i < testbed.num_engines(); ++i) {
      if (!testbed.engine(i).idle()) {
        all_idle = false;
        break;
      }
    }
    if (all_idle) return;
    testbed.sim().RunUntil(testbed.sim().now() + kMillisecond);
  }
}

struct RtRig {
  explicit RtRig(const BackendRunConfig& config)
      : service(ServiceOptions(config), substrate),
        pool(service, substrate, ClientConfig(config),
             [workload = config.workload](int) {
               return std::make_unique<MicroWorkload>(workload);
             }) {}

  static rt::RtLockService::Options ServiceOptions(
      const BackendRunConfig& config) {
    NETLOCK_CHECK(config.rt_client_threads >= 1);
    NETLOCK_CHECK(config.sessions % config.rt_client_threads == 0);
    rt::RtLockService::Options options;
    options.cores = config.rt_cores;
    options.num_clients = config.rt_client_threads;
    options.record_events = config.rt_record_events;
    options.pin_threads = config.rt_pin_threads;
    options.context = config.context;
    return options;
  }

  static rt::RtClientConfig ClientConfig(const BackendRunConfig& config) {
    rt::RtClientConfig cc;
    cc.sessions_per_client = config.sessions / config.rt_client_threads;
    cc.txns_per_session = config.txns_per_session;
    cc.seed = config.seed;
    return cc;
  }

  void Finish(BackendRunResult& result) {
    pool.Join();
    service.Stop();
    result.metrics = pool.Collect();
    result.commits = pool.TotalCommits();
    result.service_grants = service.TotalStats().grants;
    result.residual_queue_depth = service.TotalQueueDepth();
    result.events = service.DrainEvents();
  }

  RtSubstrate substrate;
  rt::RtLockService service;
  rt::RtClientPool pool;
};

}  // namespace

const char* ToString(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSim:
      return "sim";
    case BackendKind::kRt:
      return "rt";
  }
  return "?";
}

bool ParseBackendKind(const std::string& text, BackendKind* out) {
  if (text == "sim") {
    *out = BackendKind::kSim;
    return true;
  }
  if (text == "rt") {
    *out = BackendKind::kRt;
    return true;
  }
  return false;
}

BackendRunResult RunMicroFixedCount(BackendKind kind,
                                    const BackendRunConfig& config) {
  NETLOCK_CHECK(config.txns_per_session > 0);
  BackendRunResult result;
  if (kind == BackendKind::kSim) {
    TestbedConfig tb = SimConfigFor(config);
    tb.txn_config.max_txns = config.txns_per_session;
    Testbed testbed(tb);
    testbed.SetRecording(true);
    const SimTime start = testbed.sim().now();
    testbed.StartEngines();
    DrainSim(testbed);
    result.metrics = testbed.Collect(testbed.sim().now() - start);
    result.commits = result.metrics.txn_commits;
    result.service_grants = testbed.server_only().Grants();
    return result;
  }
  RtRig rig(config);
  rig.pool.SetRecording(true);
  rig.service.Start();
  const SimTime start = rig.substrate.Now();
  rig.pool.Start();
  rig.Finish(result);
  const SimTime elapsed = rig.substrate.Now() - start;
  result.metrics.duration = elapsed;
  result.wall_seconds = static_cast<double>(elapsed) / 1e9;
  return result;
}

BackendRunResult RunMicroTimed(BackendKind kind,
                               const BackendRunConfig& config,
                               SimTime warmup, SimTime measure) {
  BackendRunResult result;
  if (kind == BackendKind::kSim) {
    Testbed testbed(SimConfigFor(config));
    result.metrics = testbed.Run(warmup, measure);
    testbed.StopEngines();
    result.commits = result.metrics.txn_commits;
    result.service_grants = testbed.server_only().Grants();
    return result;
  }
  BackendRunConfig timed = config;
  timed.txns_per_session = 0;  // Sessions run until StopIssuing().
  RtRig rig(timed);
  rig.service.Start();
  rig.pool.Start();
  std::this_thread::sleep_for(std::chrono::nanoseconds(warmup));
  rig.pool.SetRecording(true);
  const SimTime t0 = rig.substrate.Now();
  std::this_thread::sleep_for(std::chrono::nanoseconds(measure));
  rig.pool.SetRecording(false);
  const SimTime t1 = rig.substrate.Now();
  rig.pool.StopIssuing();
  rig.Finish(result);
  result.metrics.duration = t1 - t0;
  result.wall_seconds = static_cast<double>(t1 - t0) / 1e9;
  return result;
}

}  // namespace netlock
