#include "harness/experiment.h"

#include <algorithm>

#include "core/memory_alloc.h"

namespace netlock {

std::vector<LockDemand> UniformMicroDemands(const MicroConfig& config,
                                            int num_engines) {
  std::vector<LockDemand> demands;
  demands.reserve(config.num_locks);
  const std::uint32_t expected_concurrent = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, 4ull * num_engines / config.num_locks));
  // Floor of 2: transient two-client pile-ups queue in the switch; rarer
  // deeper pile-ups take the overflow path. A higher floor would exhaust
  // switch memory on large uncontended lock sets and push half the locks
  // to the servers, which costs far more than occasional overflow.
  const std::uint32_t contention = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(num_engines),
      std::max(2u, expected_concurrent));
  for (LockId i = 0; i < config.num_locks; ++i) {
    demands.push_back(
        LockDemand{config.first_lock + i, /*rate=*/1.0, contention});
  }
  return demands;
}

std::function<std::unique_ptr<WorkloadGenerator>(int)> TpccFactory(
    TpccConfig prototype) {
  return [prototype](int engine) {
    TpccConfig config = prototype;
    config.home_warehouse =
        static_cast<std::uint32_t>(engine) % config.warehouses;
    return std::make_unique<TpccWorkload>(config);
  };
}

std::function<std::unique_ptr<WorkloadGenerator>(int)> TpccFactory(
    std::uint32_t warehouses) {
  TpccConfig config;
  config.warehouses = warehouses;
  return TpccFactory(config);
}

std::function<std::unique_ptr<WorkloadGenerator>(int)> MicroFactory(
    MicroConfig config) {
  return [config](int) { return std::make_unique<MicroWorkload>(config); };
}

std::vector<LockDemand> ProfileAndInstall(Testbed& testbed,
                                          std::uint32_t capacity,
                                          bool random_strawman,
                                          SimTime profile_duration,
                                          std::uint64_t random_seed) {
  std::vector<LockDemand> demands = testbed.ProfileDemands(profile_duration);
  const Allocation allocation =
      random_strawman ? RandomAllocate(demands, capacity, random_seed)
                      : KnapsackAllocate(demands, capacity);
  testbed.netlock().InstallAllocation(allocation);
  return demands;
}

}  // namespace netlock
