#include "harness/experiment.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "common/check.h"
#include "core/memory_alloc.h"

namespace netlock {

void ParallelSweep(int num_tasks, int threads,
                   const std::function<void(int, SimContext&)>& task,
                   SimContext* merge_into) {
  NETLOCK_CHECK(num_tasks >= 0);
  NETLOCK_CHECK(task != nullptr);
  std::vector<std::unique_ptr<SimContext>> contexts;
  contexts.reserve(num_tasks);
  for (int i = 0; i < num_tasks; ++i) {
    contexts.push_back(std::make_unique<SimContext>());
  }
  if (threads <= 1) {
    for (int i = 0; i < num_tasks; ++i) task(i, *contexts[i]);
  } else {
    // Work-stealing by atomic index: tasks vary wildly in cost (slot
    // sweeps), so static partitioning would leave workers idle.
    std::atomic<int> next{0};
    auto worker = [&]() {
      for (int i = next.fetch_add(1, std::memory_order_relaxed);
           i < num_tasks;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        task(i, *contexts[i]);
      }
    };
    std::vector<std::thread> pool;
    const int n = std::min(threads, num_tasks);
    pool.reserve(n);
    for (int t = 0; t < n; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  MetricsRegistry& target =
      (merge_into != nullptr ? *merge_into : SimContext::Default()).metrics();
  for (int i = 0; i < num_tasks; ++i) {
    target.MergeFrom(contexts[i]->metrics());
  }
}

std::vector<LockDemand> UniformMicroDemands(const MicroConfig& config,
                                            int num_engines) {
  std::vector<LockDemand> demands;
  demands.reserve(config.num_locks);
  const std::uint32_t expected_concurrent = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, 4ull * num_engines / config.num_locks));
  // Floor of 2: transient two-client pile-ups queue in the switch; rarer
  // deeper pile-ups take the overflow path. A higher floor would exhaust
  // switch memory on large uncontended lock sets and push half the locks
  // to the servers, which costs far more than occasional overflow.
  const std::uint32_t contention = std::min<std::uint32_t>(
      static_cast<std::uint32_t>(num_engines),
      std::max(2u, expected_concurrent));
  for (LockId i = 0; i < config.num_locks; ++i) {
    demands.push_back(
        LockDemand{config.first_lock + i, /*rate=*/1.0, contention});
  }
  return demands;
}

std::function<std::unique_ptr<WorkloadGenerator>(int)> TpccFactory(
    TpccConfig prototype) {
  return [prototype](int engine) {
    TpccConfig config = prototype;
    config.home_warehouse =
        static_cast<std::uint32_t>(engine) % config.warehouses;
    return std::make_unique<TpccWorkload>(config);
  };
}

std::function<std::unique_ptr<WorkloadGenerator>(int)> TpccFactory(
    std::uint32_t warehouses) {
  TpccConfig config;
  config.warehouses = warehouses;
  return TpccFactory(config);
}

std::function<std::unique_ptr<WorkloadGenerator>(int)> MicroFactory(
    MicroConfig config) {
  return [config](int) { return std::make_unique<MicroWorkload>(config); };
}

std::vector<LockDemand> ProfileAndInstall(Testbed& testbed,
                                          std::uint32_t capacity,
                                          bool random_strawman,
                                          SimTime profile_duration,
                                          std::uint64_t random_seed) {
  std::vector<LockDemand> demands = testbed.ProfileDemands(profile_duration);
  // Solve per rack: each rack's switch has its own `capacity` slots and
  // only ever sees the demands the directory routes to it. Single-rack
  // topologies reduce to the original whole-space solve.
  ShardedNetLock& sharded = testbed.sharded();
  std::vector<std::vector<LockDemand>> per_rack(sharded.num_racks());
  for (const LockDemand& demand : demands) {
    per_rack[sharded.directory().RackFor(demand.lock)].push_back(demand);
  }
  for (int r = 0; r < sharded.num_racks(); ++r) {
    const Allocation allocation =
        random_strawman
            ? RandomAllocate(per_rack[r], capacity, random_seed + r)
            : KnapsackAllocate(per_rack[r], capacity);
    sharded.rack(r).InstallAllocation(allocation);
  }
  return demands;
}

}  // namespace netlock
