// Experiment testbed: wires a complete rack — client machines with
// transaction engines, the lock-manager system under test, and the network
// topology — mirroring the paper's setups (e.g., "ten machines as clients
// and two machines as lock servers").
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "baselines/drtm.h"
#include "core/controller.h"
#include "baselines/dslr.h"
#include "baselines/netchain.h"
#include "baselines/server_only.h"
#include "client/client.h"
#include "client/txn.h"
#include "common/stats.h"
#include "core/netlock.h"
#include "core/sharding.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace netlock {

enum class SystemKind {
  kNetLock = 0,
  kServerOnly = 1,
  kDslr = 2,
  kDrtm = 3,
  kNetChain = 4,
};

const char* ToString(SystemKind kind);

struct TestbedConfig {
  SystemKind system = SystemKind::kNetLock;

  /// Telemetry context for this testbed's simulation. nullptr = the
  /// process-wide default (serial use). Give each testbed of a sweep its
  /// own SimContext to run them concurrently (see ParallelSweep).
  SimContext* context = nullptr;

  // Topology (paper Section 6.1 defaults: 12-server testbed).
  int client_machines = 10;
  int sessions_per_machine = 8;
  int lock_servers = 2;

  /// NetLock-only scale-out: shard the lock space across this many racks
  /// (each with its own switch, `lock_servers` servers, and control
  /// plane) behind a client-side LockDirectory. Client machines are
  /// assigned to racks round-robin; requests to a remote rack pay
  /// `cross_rack_extra_latency` on top of the ToR leg for the spine hop.
  int num_racks = 1;
  SimTime cross_rack_extra_latency = 2000;

  /// One-way latencies. Client legs include client software + NIC overhead
  /// (the paper attributes most of its 8 us median to those), so a
  /// switch-served grant takes ~2 * client_switch and a server-served grant
  /// a full extra switch_server round trip.
  SimTime client_switch_latency = 2500;
  SimTime switch_server_latency = 1500;
  /// Per-request NIC service at a client machine (~18 MRPS at 55 ns).
  SimTime machine_tx_service = 55;

  LockSwitchConfig switch_config;
  LockServerConfig server_config;
  NetChainConfig netchain_config;
  RdmaNicConfig nic_config;
  DslrConfig dslr_config;
  DrtmConfig drtm_config;
  TxnEngineConfig txn_config;

  SimTime lease = 50 * kMillisecond;
  SimTime lease_poll_interval = 10 * kMillisecond;
  SimTime client_retry_timeout = 5 * kMillisecond;
  int client_max_retries = 16;

  std::uint64_t seed = 42;

  /// NetLock-only: stand up a SelfDrivingController over the topology
  /// (continuous demand-tracking reallocation). It is constructed with the
  /// testbed but not started — call controller().Start() once an initial
  /// allocation is installed (benches honor `--controller=on|off` here).
  bool controller = false;
  ControllerConfig controller_config;

  /// Required: builds the workload for engine `i` (0-based global index).
  std::function<std::unique_ptr<WorkloadGenerator>(int)> workload_factory;
  /// Optional per-engine tenant / priority (default 0).
  std::function<TenantId(int)> tenant_of;
  std::function<Priority(int)> priority_of;
  /// Lock-id space; 0 = derive from workload_factory(0).
  LockId lock_space = 0;
  /// Optional decorator applied to every session (test oracles, tracing).
  std::function<std::unique_ptr<LockSession>(std::unique_ptr<LockSession>)>
      session_wrapper;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  Simulator& sim() { return sim_; }
  Network& net() { return *net_; }
  const TestbedConfig& config() const { return config_; }

  /// NetLock-only. netlock() is rack 0 (the only rack when num_racks==1,
  /// preserving the single-rack API); sharded() exposes the full scale-out
  /// topology — directory, per-rack managers, RehomeLock.
  NetLockManager& netlock();
  ShardedNetLock& sharded();
  /// NetLock-only; requires config.controller = true.
  SelfDrivingController& controller();
  bool has_controller() const { return controller_ != nullptr; }
  ServerOnlyManager& server_only();
  DslrManager& dslr();
  DrtmManager& drtm();
  NetChainSwitch& netchain();

  int num_engines() const { return static_cast<int>(engines_.size()); }
  TxnEngine& engine(int i) { return *engines_[i]; }

  /// Starts (or resumes) all engines.
  void StartEngines();

  /// Stops engines and runs until all are idle (bounded by `max_wait`).
  void StopEngines(SimTime max_wait = 200 * kMillisecond);

  void SetRecording(bool on);

  /// Convenience: start engines, run a warm-up, record for `measure`,
  /// return the aggregated metrics. Engines keep running afterwards.
  RunMetrics Run(SimTime warmup, SimTime measure);

  /// Aggregates engine metrics recorded so far; `duration` is the measured
  /// window length used for rate computation.
  RunMetrics Collect(SimTime duration) const;

  /// NetLock-only: profile the workload with all locks on servers for
  /// `profile_duration`, drain, and return the harvested demands (input to
  /// KnapsackAllocate / RandomAllocate). Engines are left stopped+idle.
  std::vector<LockDemand> ProfileDemands(SimTime profile_duration);

 private:
  std::uint64_t GrantsServedBySwitch() const;
  std::uint64_t GrantsServedByServers() const;

  TestbedConfig config_;
  Simulator sim_;
  std::unique_ptr<Network> net_;

  // Exactly one of these is set, per config_.system.
  std::unique_ptr<ShardedNetLock> sharded_;
  std::unique_ptr<SelfDrivingController> controller_;
  std::unique_ptr<ServerOnlyManager> server_only_;
  std::unique_ptr<DslrManager> dslr_;
  std::unique_ptr<DrtmManager> drtm_;
  std::unique_ptr<NetChainSwitch> netchain_;

  std::vector<std::unique_ptr<ClientMachine>> machines_;
  std::vector<std::unique_ptr<LockSession>> sessions_;
  std::vector<std::unique_ptr<TxnEngine>> engines_;

  std::uint64_t switch_grants_at_record_ = 0;
  std::uint64_t server_grants_at_record_ = 0;
};

}  // namespace netlock
