// Time-series sampling of registry instruments.
//
// The bench reports historically captured only end-of-run totals, which
// hides everything Figure 15 is about: throughput collapsing at the
// failure instant and recovering after failover. A TimeSeriesSampler
// closes that gap by snapshotting selected MetricsRegistry counters and
// gauges every `interval` simulated nanoseconds, turning the registry's
// monotonic totals into per-bucket rates (events/second) and gauge levels
// over time. Benches embed the result as a "time_series" section of
// BENCH_<name>.json via BenchReport::AttachTimeSeries.
//
// The sampler is itself a simulation actor: Start(horizon) takes the
// baseline snapshot at now() and schedules one tick per interval up to and
// including the horizon, so a run with Simulator::Run() still drains (the
// sampler never self-reschedules past the horizon). The bucketing itself
// lives in the backend-neutral TimeSeriesStore (common/timeseries.h) so
// the real-time stats poller produces the same report section from a
// wall-clock thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/timeseries.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace netlock {

class TimeSeriesSampler {
 public:
  TimeSeriesSampler(Simulator& sim, SimTime interval);
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Tracks a counter: each bucket reports the delta over the bucket
  /// (Delta) and the corresponding rate in events/second (Value).
  void Watch(const std::string& counter_name);

  /// Tracks a gauge: each bucket reports the level at the bucket's end.
  void WatchGauge(const std::string& gauge_name);

  /// Takes the baseline snapshot at now() and schedules ticks at
  /// now()+interval, now()+2*interval, ... while tick time <= now()+horizon.
  /// Call after all Watch()es and before Simulator::Run().
  void Start(SimTime horizon);

  /// Stops sampling early: ticks already scheduled become no-ops.
  void Stop() { stopped_ = true; }

  /// The underlying bucket store (what BenchReport::AttachTimeSeries
  /// consumes).
  const TimeSeriesStore& store() const { return store_; }

  SimTime interval() const { return store_.interval(); }
  std::size_t num_series() const { return store_.num_series(); }
  std::size_t num_buckets() const { return store_.num_buckets(); }

  const std::string& series_name(std::size_t s) const {
    return store_.series_name(s);
  }
  bool series_is_rate(std::size_t s) const { return store_.series_is_rate(s); }

  /// Midpoint of bucket `b` in seconds since Start() — the natural x
  /// coordinate when plotting rate buckets.
  double BucketTimeSeconds(std::size_t b) const {
    return store_.BucketTimeSeconds(b);
  }

  /// Rate series: events/second over the bucket. Gauge series: the level
  /// sampled at the end of the bucket.
  double Value(std::size_t s, std::size_t b) const {
    return store_.Value(s, b);
  }

  /// Raw per-bucket count delta (rate series) or end-of-bucket level
  /// (gauge series).
  std::uint64_t Delta(std::size_t s, std::size_t b) const {
    return store_.Delta(s, b);
  }

 private:
  void Tick();

  Simulator& sim_;
  bool stopped_ = false;
  TimeSeriesStore store_;
};

}  // namespace netlock
