// Time-series sampling of registry instruments.
//
// The bench reports historically captured only end-of-run totals, which
// hides everything Figure 15 is about: throughput collapsing at the
// failure instant and recovering after failover. A TimeSeriesSampler
// closes that gap by snapshotting selected MetricsRegistry counters and
// gauges every `interval` simulated nanoseconds, turning the registry's
// monotonic totals into per-bucket rates (events/second) and gauge levels
// over time. Benches embed the result as a "time_series" section of
// BENCH_<name>.json via BenchReport::AttachTimeSeries.
//
// The sampler is itself a simulation actor: Start(horizon) takes the
// baseline snapshot at now() and schedules one tick per interval up to and
// including the horizon, so a run with Simulator::Run() still drains (the
// sampler never self-reschedules past the horizon).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace netlock {

class TimeSeriesSampler {
 public:
  TimeSeriesSampler(Simulator& sim, SimTime interval);
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Tracks a counter: each bucket reports the delta over the bucket
  /// (Delta) and the corresponding rate in events/second (Value).
  void Watch(const std::string& counter_name);

  /// Tracks a gauge: each bucket reports the level at the bucket's end.
  void WatchGauge(const std::string& gauge_name);

  /// Takes the baseline snapshot at now() and schedules ticks at
  /// now()+interval, now()+2*interval, ... while tick time <= now()+horizon.
  /// Call after all Watch()es and before Simulator::Run().
  void Start(SimTime horizon);

  /// Stops sampling early: ticks already scheduled become no-ops.
  void Stop() { stopped_ = true; }

  SimTime interval() const { return interval_; }
  std::size_t num_series() const { return series_.size(); }
  std::size_t num_buckets() const {
    return series_.empty() ? 0 : series_.front().deltas.size();
  }

  const std::string& series_name(std::size_t s) const {
    return series_[s].name;
  }
  bool series_is_rate(std::size_t s) const { return series_[s].is_rate; }

  /// Midpoint of bucket `b` in seconds since Start() — the natural x
  /// coordinate when plotting rate buckets.
  double BucketTimeSeconds(std::size_t b) const;

  /// Rate series: events/second over the bucket. Gauge series: the level
  /// sampled at the end of the bucket.
  double Value(std::size_t s, std::size_t b) const;

  /// Raw per-bucket count delta (rate series) or end-of-bucket level
  /// (gauge series).
  std::uint64_t Delta(std::size_t s, std::size_t b) const {
    return series_[s].deltas[b];
  }

 private:
  struct Series {
    std::string name;
    bool is_rate = false;            ///< Counter (rate) vs gauge (level).
    const MetricCounter* counter = nullptr;
    const MetricGauge* gauge = nullptr;
    std::uint64_t last = 0;          ///< Counter value at last tick.
    std::vector<std::uint64_t> deltas;
  };

  void Tick();

  Simulator& sim_;
  SimTime interval_;
  SimTime start_time_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<Series> series_;
};

}  // namespace netlock
