#include "harness/sampler.h"

#include "common/check.h"

namespace netlock {

TimeSeriesSampler::TimeSeriesSampler(Simulator& sim, SimTime interval)
    : sim_(sim), store_(interval) {}

void TimeSeriesSampler::Watch(const std::string& counter_name) {
  NETLOCK_CHECK(!store_.begun());
  store_.Watch(counter_name, sim_.context().metrics().Counter(counter_name));
}

void TimeSeriesSampler::WatchGauge(const std::string& gauge_name) {
  NETLOCK_CHECK(!store_.begun());
  store_.WatchGauge(gauge_name, sim_.context().metrics().Gauge(gauge_name));
}

void TimeSeriesSampler::Start(SimTime horizon) {
  NETLOCK_CHECK(!store_.begun());
  store_.Begin(sim_.now());
  // Schedule every tick up front rather than self-rescheduling: a chain of
  // ticks would keep the event queue non-empty forever and Simulator::Run()
  // would never drain.
  for (SimTime t = store_.interval(); t <= horizon; t += store_.interval()) {
    sim_.Schedule(t, [this]() { Tick(); });
  }
}

void TimeSeriesSampler::Tick() {
  if (stopped_) return;
  // The pending-events gauge is sampled, not exact, between reconciles;
  // flush it so gauge series read the true depth at the bucket boundary.
  sim_.ReconcileDepthMetric();
  store_.Tick();
}

}  // namespace netlock
