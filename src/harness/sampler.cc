#include "harness/sampler.h"

#include "common/check.h"

namespace netlock {

TimeSeriesSampler::TimeSeriesSampler(Simulator& sim, SimTime interval)
    : sim_(sim), interval_(interval) {
  NETLOCK_CHECK(interval_ > 0);
}

void TimeSeriesSampler::Watch(const std::string& counter_name) {
  NETLOCK_CHECK(!started_);
  Series s;
  s.name = counter_name;
  s.is_rate = true;
  s.counter = &sim_.context().metrics().Counter(counter_name);
  series_.push_back(std::move(s));
}

void TimeSeriesSampler::WatchGauge(const std::string& gauge_name) {
  NETLOCK_CHECK(!started_);
  Series s;
  s.name = gauge_name;
  s.is_rate = false;
  s.gauge = &sim_.context().metrics().Gauge(gauge_name);
  series_.push_back(std::move(s));
}

void TimeSeriesSampler::Start(SimTime horizon) {
  NETLOCK_CHECK(!started_);
  started_ = true;
  start_time_ = sim_.now();
  for (Series& s : series_) {
    if (s.is_rate) s.last = s.counter->value();
  }
  // Schedule every tick up front rather than self-rescheduling: a chain of
  // ticks would keep the event queue non-empty forever and Simulator::Run()
  // would never drain.
  for (SimTime t = interval_; t <= horizon; t += interval_) {
    sim_.Schedule(t, [this]() { Tick(); });
  }
}

void TimeSeriesSampler::Tick() {
  if (stopped_) return;
  // The pending-events gauge is sampled, not exact, between reconciles;
  // flush it so gauge series read the true depth at the bucket boundary.
  sim_.ReconcileDepthMetric();
  for (Series& s : series_) {
    if (s.is_rate) {
      const std::uint64_t v = s.counter->value();
      s.deltas.push_back(v - s.last);
      s.last = v;
    } else {
      s.deltas.push_back(s.gauge->value());
    }
  }
}

double TimeSeriesSampler::BucketTimeSeconds(std::size_t b) const {
  const double bucket_ns = static_cast<double>(interval_);
  return (static_cast<double>(start_time_) +
          (static_cast<double>(b) + 0.5) * bucket_ns) /
         1e9;
}

double TimeSeriesSampler::Value(std::size_t s, std::size_t b) const {
  const Series& series = series_[s];
  const double raw = static_cast<double>(series.deltas[b]);
  if (!series.is_rate) return raw;
  return raw / (static_cast<double>(interval_) / 1e9);
}

}  // namespace netlock
