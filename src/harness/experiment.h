// Shared experiment helpers: canonical demand estimates for microbenchmark
// lock sets and TPC-C, and small utilities the figure benches share.
#pragma once

#include <vector>

#include "common/types.h"
#include "harness/testbed.h"
#include "workload/micro.h"
#include "workload/tpcc.h"

namespace netlock {

/// Demands for a uniform microbenchmark lock set: equal rates, contention
/// sized from the expected number of concurrent closed-loop clients per
/// lock (bounded below so transient pile-ups queue in the switch rather
/// than overflowing constantly, and above by the client count).
std::vector<LockDemand> UniformMicroDemands(const MicroConfig& config,
                                            int num_engines);

/// Paper Section 6.1 TPC-C contention settings, expressed as total
/// warehouses for a given client-machine count.
inline std::uint32_t TpccWarehouses(int client_machines,
                                    bool high_contention) {
  return high_contention ? static_cast<std::uint32_t>(client_machines)
                         : static_cast<std::uint32_t>(10 * client_machines);
}

/// Workload factory for TPC-C: engine i's home warehouse is spread across
/// the warehouse space the way TPC-C terminals are. The prototype's
/// home_warehouse is overridden per engine.
std::function<std::unique_ptr<WorkloadGenerator>(int)> TpccFactory(
    TpccConfig prototype);
std::function<std::unique_ptr<WorkloadGenerator>(int)> TpccFactory(
    std::uint32_t warehouses);

/// Workload factory producing identical microbenchmark generators.
std::function<std::unique_ptr<WorkloadGenerator>(int)> MicroFactory(
    MicroConfig config);

/// Runs the standard NetLock setup for a testbed whose system is kNetLock:
/// profile demands on the servers, allocate `capacity` switch slots with
/// Algorithm 3 (or the random strawman), install. Returns the demands.
std::vector<LockDemand> ProfileAndInstall(Testbed& testbed,
                                          std::uint32_t capacity,
                                          bool random_strawman = false,
                                          SimTime profile_duration =
                                              100 * kMillisecond,
                                          std::uint64_t random_seed = 1);

/// Runs `num_tasks` independent simulations on up to `threads` worker
/// threads. Each task gets its own SimContext — build the task's Testbed
/// with `config.context = &context` so the run shares no state with its
/// siblings. After every task finishes, each context's metrics are folded
/// into `merge_into` (Default() when null) **in task order**, so the final
/// registry snapshot — and therefore the bench report — is byte-identical
/// to a serial run over the shared registry.
///
/// threads <= 1 executes inline on the calling thread (no pool), which is
/// the serial path benches take without --jobs. Tracing is per-context;
/// traces recorded inside tasks are not merged, so benches that write
/// TRACE files should run their traced scenario outside the sweep.
void ParallelSweep(int num_tasks, int threads,
                   const std::function<void(int task, SimContext& context)>&
                       task,
                   SimContext* merge_into = nullptr);

}  // namespace netlock
