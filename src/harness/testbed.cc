#include "harness/testbed.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

const char* ToString(SystemKind kind) {
  switch (kind) {
    case SystemKind::kNetLock:
      return "NetLock";
    case SystemKind::kServerOnly:
      return "ServerOnly";
    case SystemKind::kDslr:
      return "DSLR";
    case SystemKind::kDrtm:
      return "DrTM";
    case SystemKind::kNetChain:
      return "NetChain";
  }
  return "?";
}

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)), sim_(config_.context) {
  NETLOCK_CHECK(config_.workload_factory != nullptr);
  NETLOCK_CHECK(config_.client_machines >= 1);
  NETLOCK_CHECK(config_.sessions_per_machine >= 1);
  NETLOCK_CHECK(config_.num_racks >= 1);
  // Only NetLock has a sharded scale-out path; the baselines are
  // single-rack systems.
  NETLOCK_CHECK(config_.num_racks == 1 ||
                config_.system == SystemKind::kNetLock);

  // Default latency covers the client<->server path (through the ToR);
  // client<->switch pairs are set explicitly below.
  const SimTime client_server =
      config_.client_switch_latency + config_.switch_server_latency;
  net_ = std::make_unique<Network>(sim_, client_server);
  // Fault streams (loss, duplication, reorder, jitter) follow the run seed,
  // so seeded sweeps vary their fault patterns; explicit per-test seeds via
  // SetLossProbability(p, seed) still override.
  net_->SetFaultSeed(config_.seed);

  LockId lock_space = config_.lock_space;
  if (lock_space == 0) {
    lock_space = config_.workload_factory(0)->lock_space();
  }

  // --- System under test ---
  std::vector<NodeId> infra_switch_nodes;  // Nodes at switch distance.
  std::vector<NodeId> infra_server_nodes;  // Nodes at server distance.
  switch (config_.system) {
    case SystemKind::kNetLock: {
      NetLockOptions options;
      options.switch_config = config_.switch_config;
      options.server_config = config_.server_config;
      options.num_servers = config_.lock_servers;
      options.control_config.lease = config_.lease;
      options.control_config.lease_poll_interval =
          config_.lease_poll_interval;
      options.client_retry_timeout = config_.client_retry_timeout;
      options.client_max_retries = config_.client_max_retries;
      // Lease discipline: suppress client releases within `margin` of the
      // grant's lease expiring, so a release can never race the lease
      // sweep's forced release and blind-pop another waiter's entry. The
      // margin must cover the release's flight plus the grant's (both one
      // client<->switch leg, plus slack for jitter/NIC queueing), but stay
      // well under the lease so normal releases are never suppressed.
      options.client_lease = config_.lease;
      options.client_lease_release_margin = std::min<SimTime>(
          config_.lease / 4,
          std::max<SimTime>(100 * kMicrosecond,
                            8 * (config_.client_switch_latency +
                                 config_.switch_server_latency)));
      ShardedNetLockOptions sharded_options;
      sharded_options.rack = options;
      sharded_options.num_racks = config_.num_racks;
      sharded_ = std::make_unique<ShardedNetLock>(*net_, sharded_options);
      if (config_.controller) {
        controller_ = std::make_unique<SelfDrivingController>(
            sim_, *sharded_, config_.controller_config);
      }
      for (int r = 0; r < sharded_->num_racks(); ++r) {
        NetLockManager& rack = sharded_->rack(r);
        infra_switch_nodes.push_back(rack.lock_switch().node());
        for (int i = 0; i < rack.num_servers(); ++i) {
          infra_server_nodes.push_back(rack.server(i).node());
        }
      }
      break;
    }
    case SystemKind::kServerOnly: {
      server_only_ = std::make_unique<ServerOnlyManager>(
          *net_, config_.server_config, config_.lock_servers);
      server_only_->set_session_defaults(
          {config_.client_retry_timeout, config_.client_max_retries});
      server_only_->StartLeasePolling(config_.lease,
                                      config_.lease_poll_interval);
      for (int i = 0; i < server_only_->num_servers(); ++i) {
        infra_server_nodes.push_back(server_only_->server(i).node());
      }
      break;
    }
    case SystemKind::kDslr:
      dslr_ = std::make_unique<DslrManager>(*net_, config_.lock_servers,
                                            lock_space, config_.nic_config,
                                            config_.dslr_config);
      for (int i = 0; i < dslr_->num_servers(); ++i) {
        infra_server_nodes.push_back(dslr_->nic(i).node());
      }
      break;
    case SystemKind::kDrtm:
      drtm_ = std::make_unique<DrtmManager>(*net_, config_.lock_servers,
                                            lock_space, config_.nic_config,
                                            config_.drtm_config);
      for (int i = 0; i < drtm_->num_servers(); ++i) {
        infra_server_nodes.push_back(drtm_->nic(i).node());
      }
      break;
    case SystemKind::kNetChain:
      netchain_ = std::make_unique<NetChainSwitch>(*net_,
                                                   config_.netchain_config);
      infra_switch_nodes.push_back(netchain_->node());
      break;
  }

  // --- Clients ---
  const int total_engines =
      config_.client_machines * config_.sessions_per_machine;
  for (int m = 0; m < config_.client_machines; ++m) {
    machines_.push_back(
        std::make_unique<ClientMachine>(*net_, config_.machine_tx_service));
  }
  for (int i = 0; i < total_engines; ++i) {
    ClientMachine& machine = *machines_[i % config_.client_machines];
    const TenantId tenant = config_.tenant_of ? config_.tenant_of(i) : 0;
    std::unique_ptr<LockSession> session;
    switch (config_.system) {
      case SystemKind::kNetLock:
        session = sharded_->CreateSession(machine, tenant);
        break;
      case SystemKind::kServerOnly:
        session = server_only_->CreateSession(machine, tenant);
        break;
      case SystemKind::kDslr:
        session = dslr_->CreateSession(machine);
        break;
      case SystemKind::kDrtm:
        session = drtm_->CreateSession(machine);
        break;
      case SystemKind::kNetChain:
        session = std::make_unique<NetChainSession>(
            machine, *netchain_, config_.seed * 7919 + i);
        break;
    }
    if (config_.system == SystemKind::kNetLock &&
        sharded_->num_racks() > 1) {
      // Multi-rack: one inner session per rack, each with its own node.
      // The machine's home rack (round-robin by machine) is one ToR leg
      // away; every other rack costs an extra spine hop each way.
      auto* sharded_session = static_cast<ShardedSession*>(session.get());
      const int home = (i % config_.client_machines) % sharded_->num_racks();
      for (int r = 0; r < sharded_->num_racks(); ++r) {
        const SimTime extra =
            (r == home) ? 0 : config_.cross_rack_extra_latency;
        NetLockManager& rack = sharded_->rack(r);
        const NodeId leaf = sharded_session->rack_session(r).node();
        net_->SetLatency(leaf, rack.lock_switch().node(),
                         config_.client_switch_latency + extra);
        for (int s = 0; s < rack.num_servers(); ++s) {
          net_->SetLatency(leaf, rack.server(s).node(),
                           client_server + extra);
        }
      }
    } else {
      // Session nodes sit one client leg from switches.
      for (const NodeId sw : infra_switch_nodes) {
        net_->SetLatency(session->node(), sw, config_.client_switch_latency);
      }
    }
    if (config_.session_wrapper) {
      session = config_.session_wrapper(std::move(session));
    }
    TxnEngineConfig txn_config = config_.txn_config;
    if (config_.priority_of) txn_config.priority = config_.priority_of(i);
    engines_.push_back(std::make_unique<TxnEngine>(
        sim_, *session, config_.workload_factory(i),
        static_cast<std::uint32_t>(i + 1),
        config_.seed * 1000003ull + i, txn_config));
    sessions_.push_back(std::move(session));
  }
  if (config_.system == SystemKind::kNetLock && sharded_->num_racks() > 1) {
    // Each switch pairs with its own rack's servers over the ToR fabric;
    // switch <-> switch (re-home tombstone forwarding) crosses the spine.
    for (int r = 0; r < sharded_->num_racks(); ++r) {
      NetLockManager& rack = sharded_->rack(r);
      for (int s = 0; s < rack.num_servers(); ++s) {
        net_->SetLatency(rack.lock_switch().node(), rack.server(s).node(),
                         config_.switch_server_latency);
      }
      for (int q = r + 1; q < sharded_->num_racks(); ++q) {
        net_->SetLatency(rack.lock_switch().node(),
                         sharded_->rack(q).lock_switch().node(),
                         config_.cross_rack_extra_latency);
      }
    }
  } else {
    // Switch <-> server legs.
    for (const NodeId sw : infra_switch_nodes) {
      for (const NodeId srv : infra_server_nodes) {
        net_->SetLatency(sw, srv, config_.switch_server_latency);
      }
    }
  }
}

Testbed::~Testbed() = default;

NetLockManager& Testbed::netlock() {
  NETLOCK_CHECK(sharded_ != nullptr);
  return sharded_->rack(0);
}
ShardedNetLock& Testbed::sharded() {
  NETLOCK_CHECK(sharded_ != nullptr);
  return *sharded_;
}
SelfDrivingController& Testbed::controller() {
  NETLOCK_CHECK(controller_ != nullptr);
  return *controller_;
}
ServerOnlyManager& Testbed::server_only() {
  NETLOCK_CHECK(server_only_ != nullptr);
  return *server_only_;
}
DslrManager& Testbed::dslr() {
  NETLOCK_CHECK(dslr_ != nullptr);
  return *dslr_;
}
DrtmManager& Testbed::drtm() {
  NETLOCK_CHECK(drtm_ != nullptr);
  return *drtm_;
}
NetChainSwitch& Testbed::netchain() {
  NETLOCK_CHECK(netchain_ != nullptr);
  return *netchain_;
}

void Testbed::StartEngines() {
  for (auto& engine : engines_) {
    if (engine->idle()) engine->Restart();
  }
}

void Testbed::StopEngines(SimTime max_wait) {
  for (auto& engine : engines_) engine->Stop();
  const SimTime deadline = sim_.now() + max_wait;
  while (sim_.now() < deadline) {
    bool all_idle = true;
    for (auto& engine : engines_) {
      if (!engine->idle()) {
        all_idle = false;
        break;
      }
    }
    if (all_idle) return;
    sim_.RunUntil(sim_.now() + kMillisecond);
  }
  for (auto& engine : engines_) {
    NETLOCK_CHECK(engine->idle());  // Drain failed: a request is stuck.
  }
}

void Testbed::SetRecording(bool on) {
  for (auto& engine : engines_) engine->SetRecording(on);
  if (on) {
    switch_grants_at_record_ = GrantsServedBySwitch();
    server_grants_at_record_ = GrantsServedByServers();
  }
}

std::uint64_t Testbed::GrantsServedBySwitch() const {
  switch (config_.system) {
    case SystemKind::kNetLock:
      return sharded_->SwitchGrants();
    case SystemKind::kNetChain:
      return netchain_->stats().grants;
    default:
      return 0;
  }
}

std::uint64_t Testbed::GrantsServedByServers() const {
  switch (config_.system) {
    case SystemKind::kNetLock:
      return sharded_->ServerGrants();
    case SystemKind::kServerOnly:
      return server_only_->Grants();
    default:
      return 0;  // Decentralized systems grant client-side.
  }
}

RunMetrics Testbed::Run(SimTime warmup, SimTime measure) {
  StartEngines();
  sim_.RunUntil(sim_.now() + warmup);
  SetRecording(true);
  sim_.RunUntil(sim_.now() + measure);
  SetRecording(false);
  return Collect(measure);
}

RunMetrics Testbed::Collect(SimTime duration) const {
  RunMetrics total;
  total.duration = duration;
  for (const auto& engine : engines_) {
    const RunMetrics& m = engine->metrics();
    total.lock_grants += m.lock_grants;
    total.lock_requests += m.lock_requests;
    total.retries += m.retries;
    total.txn_commits += m.txn_commits;
    total.lock_latency.Merge(m.lock_latency);
    total.txn_latency.Merge(m.txn_latency);
  }
  total.switch_grants = GrantsServedBySwitch() - switch_grants_at_record_;
  total.server_grants = GrantsServedByServers() - server_grants_at_record_;
  return total;
}

std::vector<LockDemand> Testbed::ProfileDemands(SimTime profile_duration) {
  NETLOCK_CHECK(sharded_ != nullptr);
  for (int r = 0; r < sharded_->num_racks(); ++r) {
    sharded_->rack(r).control_plane().StartLeasePolling();
    // Reset the demand window before profiling.
    (void)sharded_->rack(r).control_plane().HarvestDemands();
  }
  StartEngines();
  sim_.RunUntil(sim_.now() + profile_duration);
  StopEngines();
  // Each lock's demand is observed only by its directory rack, so the
  // per-rack harvests are disjoint; concatenate in rack order for
  // determinism.
  std::vector<LockDemand> demands;
  for (int r = 0; r < sharded_->num_racks(); ++r) {
    std::vector<LockDemand> rack_demands =
        sharded_->rack(r).control_plane().HarvestDemands();
    demands.insert(demands.end(), rack_demands.begin(), rack_demands.end());
  }
  return demands;
}

}  // namespace netlock
