#include "harness/trace_analysis.h"

#include <cstdio>
#include <cstring>

#include "harness/report.h"

namespace netlock {

namespace {

void Accumulate(StageStats& stats, SimTime dur) {
  ++stats.count;
  stats.total_ns += dur;
  if (dur > stats.max_ns) stats.max_ns = dur;
}

bool NameIs(const TraceEvent& ev, const char* name) {
  return ev.name != nullptr && std::strcmp(ev.name, name) == 0;
}

}  // namespace

TraceBreakdown ComputeBreakdown(const TraceLog& log) {
  TraceBreakdown bd;
  std::uint64_t passes_total = 0;
  for (const TraceEvent& ev : log.events()) {
    if (ev.phase == 'X' && ev.track == TraceTrack::kNetwork) {
      // All wire.* spans regardless of op: the wire share of the RTT is
      // the sum over every hop the request's packets take.
      Accumulate(bd.wire, ev.dur);
      continue;
    }
    if (ev.phase != 'X') {
      continue;
    }
    if (NameIs(ev, "client.acquire_rtt")) {
      Accumulate(bd.rtt, ev.dur);
    } else if (NameIs(ev, "queue.wait") || NameIs(ev, "server.queue_wait")) {
      Accumulate(bd.queue_wait, ev.dur);
    } else if (NameIs(ev, "server.service")) {
      Accumulate(bd.server_service, ev.dur);
    } else if (NameIs(ev, "pipeline.acquire")) {
      ++bd.acquires;
      // arg0 is {"passes", n} (see switch_dataplane.cc).
      if (ev.arg0.key != nullptr &&
          std::strcmp(ev.arg0.key, "passes") == 0) {
        passes_total += ev.arg0.value;
      }
    }
  }
  if (bd.acquires > 0) {
    bd.pipeline_passes_mean = static_cast<double>(passes_total) /
                              static_cast<double>(bd.acquires);
  }
  return bd;
}

void PrintBreakdown(const std::string& label, const TraceBreakdown& bd) {
  std::printf("\n-- Acquire latency breakdown: %s --\n", label.c_str());
  Table table({"stage", "spans", "mean", "max"});
  auto row = [&table](const char* stage, const StageStats& s) {
    table.AddRow({stage, std::to_string(s.count),
                  FormatNanos(static_cast<SimTime>(s.MeanNs())),
                  FormatNanos(s.max_ns)});
  };
  row("client RTT", bd.rtt);
  row("wire (per hop)", bd.wire);
  row("queue wait", bd.queue_wait);
  row("server service", bd.server_service);
  table.Print();
  std::printf("pipeline passes/acquire: %.3f over %llu acquires\n",
              bd.pipeline_passes_mean,
              static_cast<unsigned long long>(bd.acquires));
}

}  // namespace netlock
