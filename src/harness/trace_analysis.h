// Per-stage latency breakdown computed from a recorded trace.
//
// The client-observed acquire RTT decomposes into time on the wire, switch
// pipeline passes, waiting in the shared queue (on-switch slots or the
// lock server's overflow queue), and lock-server service. This module
// aggregates a TraceLog's spans per stage so bench/micro_components can
// print the decomposition and dump it into BENCH_micro_components.json —
// the simulated counterpart of the paper's Table "where does the time go".
#pragma once

#include <cstdint>
#include <string>

#include "common/tracelog.h"

namespace netlock {

/// Aggregate over all spans of one stage.
struct StageStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  SimTime max_ns = 0;

  double MeanNs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(count);
  }
};

/// The per-stage decomposition of the request path.
struct TraceBreakdown {
  StageStats rtt;             ///< client.acquire_rtt (end-to-end).
  StageStats wire;            ///< network wire.* spans (all hops).
  StageStats queue_wait;      ///< queue.wait + server.queue_wait.
  StageStats server_service;  ///< server.service.
  /// Mean switch pipeline passes per acquire (1 = no resubmit).
  double pipeline_passes_mean = 0.0;
  std::uint64_t acquires = 0;  ///< pipeline.acquire events seen.
};

/// Scans the log's events and aggregates per stage. Cheap relative to the
/// run itself (single linear pass).
TraceBreakdown ComputeBreakdown(const TraceLog& log);

/// Prints the decomposition as an aligned table with a `label` banner row.
void PrintBreakdown(const std::string& label, const TraceBreakdown& bd);

}  // namespace netlock
