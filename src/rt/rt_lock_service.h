// Real-time, core-sharded lock service.
//
// The wall-clock twin of the simulated LockServer, shaped like the
// prototype's DPDK server (Section 5, ~2.25 MRPS/core): N worker cores,
// shared-nothing per-core state, and RSS-style lock->core hashing so every
// lock is owned by exactly one core and the protocol state needs no locks.
// Requests travel from client threads to cores over SPSC rings (one per
// (core, client) pair), are drained in batches, and run through the same
// LockEngine the simulator's LockServer uses — the protocol logic is
// compiled once, not forked. Blocked acquires park in the engine's per-lock
// wait queue (no core ever spins on a held lock); grants flow back through
// per-(client, core) completion rings.
//
// Observability: every per-request statistic lives in a sharded
// TelemetryDomain (one cache-line-isolated shard per core, single-writer
// plain stores — no shared atomic RMW on the hot path); Stop() folds the
// domain into the context registry so bench reports see the same
// "rt.requests"/"rt.grants"/... totals as before. A FlightRecorder ring
// (owned by default, injectable for tests) keeps the last few thousand
// protocol events per core for crash/violation autopsy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/flight_recorder.h"
#include "common/sim_context.h"
#include "common/telemetry.h"
#include "common/types.h"
#include "core/lock_engine.h"
#include "rt/aligned_buf.h"
#include "rt/executor.h"
#include "rt/spsc_ring.h"
#include "substrate/execution_substrate.h"

namespace netlock::rt {

struct RtRequest {
  enum class Op : std::uint8_t {
    kAcquire = 0,
    kRelease = 1,
    /// Remove every queue entry of (lock, txn) — granted or not — without
    /// completing it. Sent after a deadlock-policy abort while an acquire
    /// was still queued. Idempotent; no completion is produced.
    kCancel = 2,
  };
  Op op = Op::kAcquire;
  LockMode mode = LockMode::kExclusive;
  LockId lock = kInvalidLock;
  TxnId txn = kInvalidTxn;
  std::uint32_t client = 0;  ///< Client-thread index; grants return there.
};

struct RtCompletion {
  enum class Status : std::uint8_t {
    kGranted = 0,
    kAborted = 1,  ///< Deadlock policy refused or revoked the entry.
  };
  LockId lock = kInvalidLock;
  LockMode mode = LockMode::kExclusive;
  TxnId txn = kInvalidTxn;
  SimTime granted_at = 0;  ///< Substrate time the grant was issued.
  Status status = Status::kGranted;
  /// Valid when status == kAborted: why (no-wait / wait-die / wound).
  AbortReason reason = AbortReason::kNoWait;
};

/// Engine-level event, recorded per core and merged by sequence number —
/// a linearization of the real-time grant stream that the single-threaded
/// LockOracle can replay after the run (mutual exclusion + FIFO checks).
struct RtEvent {
  enum class Kind : std::uint8_t {
    kAccept = 0,
    kGrant = 1,
    kRelease = 2,
    /// Every queue entry of (lock, txn) removed — policy refusal, wound,
    /// or client cancel. Replay drops any holder state for the pair.
    kAbort = 3,
  };
  std::uint64_t seq = 0;
  Kind kind = Kind::kAccept;
  LockId lock = kInvalidLock;
  LockMode mode = LockMode::kExclusive;
  TxnId txn = kInvalidTxn;
};

class RtLockService {
 public:
  struct Options {
    int cores = 2;
    int num_clients = 1;  ///< Client threads that will call Submit/Poll.
    std::size_t ring_capacity = 8192;
    /// Max requests drained from one mailbox per visit.
    std::size_t drain_batch = 64;
    bool record_events = false;  ///< Oracle replay log (test builds).
    bool pin_threads = false;
    /// Worker idle tuning, forwarded to RtExecutor::Options. The defaults
    /// spin aggressively (dedicated-host latency mode); park-eager
    /// settings (spin_rounds ~0, longer park_timeout) suit shared or
    /// oversubscribed hosts, where spinning burns someone else's CPU and
    /// every submit-side doorbell is a real futex wake — the regime the
    /// --batch-submit A/B bench measures.
    int spin_rounds = 256;
    int yield_rounds = 16;
    std::chrono::microseconds park_timeout{100};
    /// Stage grants in a per-(core, client) buffer and flush them into the
    /// completion rings once per drain with PushBatch, instead of pushing
    /// (and possibly spin-waiting on a full client ring) inside the engine
    /// cascade. Off = legacy direct push, kept as the A/B baseline for
    /// --batch-submit.
    bool batch_submit = true;
    /// Flight recorder on the hot path. On by default (a record is a few
    /// plain stores); `--telemetry=off` benches disable it to measure the
    /// overhead. An external `recorder` overrides ownership either way
    /// (the fuzzer and violation tests inject one they keep after Stop).
    bool telemetry = true;
    FlightRecorder* recorder = nullptr;
    std::size_t flight_capacity = 4096;  ///< Per-core ring (owned recorder).
    /// Telemetry context; nullptr = process default. The sharded domain is
    /// folded into this context's registry at Stop().
    SimContext* context = nullptr;
    /// Deadlock-handling policy applied by every core's engine.
    DeadlockPolicy deadlock_policy = DeadlockPolicy::kNone;
  };

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t grants = 0;
    std::uint64_t releases = 0;
    std::uint64_t stale_releases = 0;
    std::uint64_t mismatched_releases = 0;
    std::uint64_t batches = 0;    ///< Nonempty mailbox drains.
    std::uint64_t max_batch = 0;  ///< Largest single drain.
    std::uint64_t flushes = 0;    ///< Staged-completion flushes.
    std::uint64_t staged_completions = 0;  ///< Grants that were staged.
    std::uint64_t aborts = 0;  ///< no-wait / wait-die refusals.
    std::uint64_t wounds = 0;  ///< Entries revoked by wound-wait.
    std::uint64_t cancel_removed = 0;  ///< Entries removed by kCancel.
    /// Of cancel_removed, how many were already granted (their grant
    /// completion was produced but the client discarded it).
    std::uint64_t cancel_removed_granted = 0;
  };

  RtLockService(Options options, ExecutionSubstrate& substrate);
  ~RtLockService();

  RtLockService(const RtLockService&) = delete;
  RtLockService& operator=(const RtLockService&) = delete;

  void Start();
  /// Drains everything already submitted, stops the workers, and folds the
  /// telemetry domain into the context registry.
  void Stop();

  /// RSS hash, identical to the simulated LockServer's core dispatch.
  int CoreFor(LockId lock) const;

  /// Called only from client thread `client`. Spin-waits (with yields) if
  /// the target mailbox is full — backpressure, never loss. Rings at most
  /// one doorbell per push, and only at the worker owning the lock's core.
  void Submit(int client, const RtRequest& req);

  /// Batched submit: pushes `n` requests — all of which must hash to
  /// `core` (i.e. CoreFor(req.lock) == core) — into that core's mailbox
  /// with one release-store per PushBatch and a single doorbell for the
  /// whole flush. Called only from client thread `client`.
  void SubmitBatch(int client, int core, const RtRequest* reqs,
                   std::size_t n);

  /// Called only from client thread `client`; pops up to `max` grants.
  std::size_t PollCompletions(int client, RtCompletion* out,
                              std::size_t max);

  /// Blocks until every submitted request has been processed. Call from a
  /// non-worker thread with producers quiescent (no concurrent Submits).
  void WaitQuiesce();

  /// Summed per-core stats. Exact once quiesced.
  Stats TotalStats() const;

  /// One core's slice of the stats (live view; exact once quiesced).
  Stats CoreStats(int core) const;

  /// Queued entries still held across all cores (leak check; call after
  /// Stop()).
  std::size_t TotalQueueDepth() const;

  /// The merged event log (record_events only; call after Stop()).
  std::vector<RtEvent> DrainEvents();

  int cores() const { return options_.cores; }
  int num_clients() const { return options_.num_clients; }

  /// The sharded per-core stats store (live readers: poller, netlock_top).
  TelemetryDomain& telemetry_domain() { return domain_; }
  const TelemetryDomain& telemetry_domain() const { return domain_; }

  /// The hot-path flight recorder; nullptr when telemetry is off and no
  /// external recorder was injected.
  FlightRecorder* flight_recorder() const { return recorder_; }

  const RtExecutor& executor() const { return *executor_; }

  /// Approximate request backlog parked in `core`'s mailboxes right now.
  std::size_t MailboxDepthApprox(int core) const;

 private:
  /// One worker core: engine + sink + replay log, padded so cores never
  /// false-share. Counters live in the TelemetryDomain's shards.
  struct alignas(64) Core {
    /// Sink bridging the shared LockEngine to the completion rings.
    struct Sink final : public GrantSink {
      void DeliverGrant(LockId lock, const QueueSlot& slot) override;
      void DeliverAbort(LockId lock, const QueueSlot& slot,
                        AbortReason reason) override;
      RtLockService* service = nullptr;
      int core = 0;
    };
    Sink sink;
    std::unique_ptr<LockEngine> engine;
    std::vector<RtEvent> events;
  };

  /// Per-core staging for grant completions (batch_submit mode): the sink
  /// appends here during the cascade; ServiceCore flushes per drain. One
  /// cache line per core for the headers so appends never false-share.
  struct alignas(64) CoreStaging {
    std::vector<std::vector<RtCompletion>> per_client;
  };

  bool ServiceCore(int core);
  /// Pushes core's staged completions into the client rings (PushBatch,
  /// spin-with-yield on full — backpressure outside the engine cascade).
  void FlushStaged(int core);
  void Process(int core_idx, Core& core, const RtRequest& req);
  /// Routes one completion (grant or abort) to its client's ring: staged
  /// in batch_submit mode, direct push with backpressure otherwise.
  void DeliverCompletion(int core, const RtCompletion& comp,
                         std::uint32_t client);
  void RecordEvent(Core& core, RtEvent::Kind kind, LockId lock,
                   LockMode mode, TxnId txn);
  void AppendEvent(Core& core, std::uint64_t seq, RtEvent::Kind kind,
                   LockId lock, LockMode mode, TxnId txn);

  Options options_;
  ExecutionSubstrate& substrate_;
  std::vector<std::unique_ptr<Core>> cores_;
  /// req_rings_[core][client]: client -> core mailboxes.
  std::vector<std::vector<std::unique_ptr<SpscRing<RtRequest>>>> req_rings_;
  /// comp_rings_[client][core]: core -> client completions.
  std::vector<std::vector<std::unique_ptr<SpscRing<RtCompletion>>>>
      comp_rings_;
  /// Per-core drain scratch; each core's region starts on its own cache
  /// line (adjacent regions used to share the boundary line).
  std::unique_ptr<AlignedRegions<RtRequest>> drain_buf_;
  std::vector<std::unique_ptr<CoreStaging>> staging_;  ///< One per core.
  std::unique_ptr<RtExecutor> executor_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> event_seq_{0};

  /// Sharded per-core stats (one shard per worker core).
  TelemetryDomain domain_;
  TelemetryCounter c_requests_;
  TelemetryCounter c_grants_;
  TelemetryCounter c_releases_;
  TelemetryCounter c_stale_releases_;
  TelemetryCounter c_mismatched_releases_;
  TelemetryCounter c_batches_;
  TelemetryCounter c_flushes_;  ///< Nonempty staged-completion flushes.
  TelemetryCounter c_staged_completions_;  ///< Grants routed via staging.
  TelemetryCounter c_aborts_;  ///< no-wait / wait-die refusals.
  TelemetryCounter c_wounds_;  ///< wound-wait revocations.
  TelemetryCounter c_cancel_removed_;
  TelemetryCounter c_cancel_removed_granted_;
  TelemetryGauge g_mailbox_depth_;  ///< kSum: backlog across cores.
  TelemetryGauge g_batch_;          ///< kMax: hwm = largest drain batch.

  std::unique_ptr<FlightRecorder> owned_recorder_;
  FlightRecorder* recorder_ = nullptr;
  SimContext* publish_context_ = nullptr;
};

}  // namespace netlock::rt
