// Background stats sampler for real-time runs.
//
// Simulated benches tick their TimeSeriesSampler as a simulation actor;
// the real-time backend has no event queue to hook, so this poller runs a
// wall-clock sampling thread instead: every interval it folds the sharded
// TelemetryDomains into the MetricsRegistry (delta publish — the registry's
// totals stay exact) and closes one TimeSeriesStore bucket, producing the
// same "time_series" section in BENCH_rt_mlps.json that the sim benches
// have.
//
// Optionally the poller serves live snapshots over a Unix-domain socket:
// every tick it writes one text frame (the SnapshotProvider's output,
// terminated by an "end" line) to each connected client. `tools/netlock_top`
// connects and renders the frames as a live per-core dashboard. The socket
// is strictly observe-only and best-effort: clients that stall or close are
// dropped, and a full client buffer never blocks the sampling tick.
//
// Thread-safety: configure (AddDomain / Watch / SetSnapshotProvider) before
// Start; the store and polls() may be read after Stop. The sampling thread
// is the only writer to the store.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/timeseries.h"
#include "common/types.h"

namespace netlock::rt {

class RtStatsPoller {
 public:
  struct Options {
    /// Wall-clock sampling period; also the bucket width recorded in the
    /// time series.
    std::chrono::nanoseconds interval = std::chrono::milliseconds(10);
    /// Non-empty = serve live snapshot frames on this Unix-domain socket.
    std::string socket_path;
  };

  RtStatsPoller(Options options, MetricsRegistry& registry);
  ~RtStatsPoller();

  RtStatsPoller(const RtStatsPoller&) = delete;
  RtStatsPoller& operator=(const RtStatsPoller&) = delete;

  /// Domains folded into the registry on every tick (service + clients).
  void AddDomain(TelemetryDomain* domain);

  /// Tracks a registry counter (per-bucket rate) / gauge (level) in the
  /// time series. Instruments are created in the registry on first use, so
  /// watching before the first publish is fine.
  void Watch(const std::string& counter_name);
  void WatchGauge(const std::string& gauge_name);

  /// Builds the per-tick socket frame. Runs on the sampling thread; must
  /// only touch thread-safe state (telemetry readers, registry atomics).
  using SnapshotProvider = std::function<std::string()>;
  void SetSnapshotProvider(SnapshotProvider provider);

  /// Baselines the store at `start_time` (ns, the substrate clock) and
  /// launches the sampling thread.
  void Start(SimTime start_time);

  /// Stops the thread (final delta publish, no partial bucket), closes and
  /// unlinks the socket.
  void Stop();

  const TimeSeriesStore& store() const { return store_; }
  std::uint64_t polls() const { return polls_.load(std::memory_order_acquire); }

 private:
  void ThreadMain();
  void PublishAll();
  void OpenSocket();
  void ServeClients(const std::string& frame);
  void CloseSocket();

  Options options_;
  MetricsRegistry& registry_;
  std::vector<TelemetryDomain*> domains_;
  SnapshotProvider provider_;
  TimeSeriesStore store_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
  std::atomic<std::uint64_t> polls_{0};

  int listen_fd_ = -1;
  std::vector<int> client_fds_;
};

}  // namespace netlock::rt
