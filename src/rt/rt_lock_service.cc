#include "rt/rt_lock_service.h"

#include <algorithm>
#include <thread>

#include "common/check.h"

namespace netlock::rt {

RtLockService::RtLockService(Options options, ExecutionSubstrate& substrate)
    : options_(options), substrate_(substrate) {
  NETLOCK_CHECK(options_.cores >= 1);
  NETLOCK_CHECK(options_.num_clients >= 1);
  SimContext& context =
      options_.context != nullptr ? *options_.context : SimContext::Default();
  requests_metric_ = &context.metrics().Counter("rt.requests");
  grants_metric_ = &context.metrics().Counter("rt.grants");
  releases_metric_ = &context.metrics().Counter("rt.releases");

  cores_.reserve(static_cast<std::size_t>(options_.cores));
  req_rings_.resize(static_cast<std::size_t>(options_.cores));
  for (int c = 0; c < options_.cores; ++c) {
    auto core = std::make_unique<Core>();
    core->sink.service = this;
    core->sink.core = c;
    core->engine = std::make_unique<LockEngine>(core->sink);
    cores_.push_back(std::move(core));
    req_rings_[static_cast<std::size_t>(c)].reserve(
        static_cast<std::size_t>(options_.num_clients));
    for (int cl = 0; cl < options_.num_clients; ++cl) {
      req_rings_[static_cast<std::size_t>(c)].push_back(
          std::make_unique<SpscRing<RtRequest>>(options_.ring_capacity));
    }
  }
  comp_rings_.resize(static_cast<std::size_t>(options_.num_clients));
  for (int cl = 0; cl < options_.num_clients; ++cl) {
    comp_rings_[static_cast<std::size_t>(cl)].reserve(
        static_cast<std::size_t>(options_.cores));
    for (int c = 0; c < options_.cores; ++c) {
      comp_rings_[static_cast<std::size_t>(cl)].push_back(
          std::make_unique<SpscRing<RtCompletion>>(options_.ring_capacity));
    }
  }
  drain_buf_.resize(static_cast<std::size_t>(options_.cores) *
                    options_.drain_batch);

  RtExecutor::Options exec;
  exec.num_workers = options_.cores;
  exec.pin_threads = options_.pin_threads;
  executor_ = std::make_unique<RtExecutor>(
      exec, [this](int worker) { return ServiceCore(worker); });
}

RtLockService::~RtLockService() { Stop(); }

void RtLockService::Start() { executor_->Start(); }

void RtLockService::Stop() {
  if (!executor_->running()) return;
  WaitQuiesce();
  executor_->Stop();
}

int RtLockService::CoreFor(LockId lock) const {
  // Same integer-mix RSS dispatch as the simulated LockServer.
  std::uint32_t h = lock;
  h ^= h >> 16;
  h *= 0x45d9f3bu;
  h ^= h >> 16;
  return static_cast<int>(h % static_cast<std::uint32_t>(options_.cores));
}

void RtLockService::Submit(int client, const RtRequest& req) {
  SpscRing<RtRequest>& ring =
      *req_rings_[static_cast<std::size_t>(CoreFor(req.lock))]
                 [static_cast<std::size_t>(client)];
  // Count before the push: a worker may process the request the instant it
  // lands, and WaitQuiesce must never observe processed > submitted.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  int spins = 0;
  while (!ring.TryPush(req)) {
    executor_->Wake();  // A parked core will never drain the full ring.
    if (++spins > 64) std::this_thread::yield();
  }
  executor_->Wake();
}

std::size_t RtLockService::PollCompletions(int client, RtCompletion* out,
                                           std::size_t max) {
  std::size_t n = 0;
  auto& rings = comp_rings_[static_cast<std::size_t>(client)];
  for (auto& ring : rings) {
    if (n >= max) break;
    n += ring->PopBatch(out + n, max - n);
  }
  return n;
}

void RtLockService::WaitQuiesce() {
  int spins = 0;
  while (processed_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    executor_->Wake();
    if (++spins > 64) std::this_thread::yield();
  }
}

bool RtLockService::ServiceCore(int core) {
  Core& c = *cores_[static_cast<std::size_t>(core)];
  RtRequest* buf = drain_buf_.data() +
                   static_cast<std::size_t>(core) * options_.drain_batch;
  bool any = false;
  for (auto& ring : req_rings_[static_cast<std::size_t>(core)]) {
    const std::size_t n = ring->PopBatch(buf, options_.drain_batch);
    if (n == 0) continue;
    any = true;
    ++c.stats.batches;
    c.stats.max_batch = std::max<std::uint64_t>(c.stats.max_batch, n);
    for (std::size_t i = 0; i < n; ++i) Process(c, buf[i]);
    processed_.fetch_add(n, std::memory_order_release);
  }
  return any;
}

void RtLockService::Process(Core& core, const RtRequest& req) {
  if (req.op == RtRequest::Op::kAcquire) {
    ++core.stats.requests;
    requests_metric_->Inc();
    RecordEvent(core, RtEvent::Kind::kAccept, req.lock, req.mode, req.txn);
    QueueSlot slot;
    slot.mode = req.mode;
    slot.txn_id = req.txn;
    slot.client_node = req.client;  // Client-thread index, not a NodeId.
    core.engine->Acquire(req.lock, slot, substrate_.Now());
    return;
  }
  // Reserve the release's sequence number before entering the engine: the
  // grant cascade runs inside Release(), and its kGrant events must sort
  // after the release that enabled them, or oracle replay would see the
  // next holder granted while the previous one still holds.
  std::uint64_t release_seq = 0;
  if (options_.record_events) {
    release_seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  const ReleaseOutcome outcome = core.engine->Release(
      req.lock, req.mode, req.txn, /*lease_forced=*/false, substrate_.Now());
  switch (outcome) {
    case ReleaseOutcome::kApplied:
      ++core.stats.releases;
      releases_metric_->Inc();
      AppendEvent(core, release_seq, RtEvent::Kind::kRelease, req.lock,
                  req.mode, req.txn);
      break;
    case ReleaseOutcome::kStale:
      ++core.stats.stale_releases;
      break;
    case ReleaseOutcome::kMismatched:
      ++core.stats.mismatched_releases;
      break;
  }
}

void RtLockService::RecordEvent(Core& core, RtEvent::Kind kind, LockId lock,
                                LockMode mode, TxnId txn) {
  if (!options_.record_events) return;
  AppendEvent(core, event_seq_.fetch_add(1, std::memory_order_relaxed),
              kind, lock, mode, txn);
}

void RtLockService::AppendEvent(Core& core, std::uint64_t seq,
                                RtEvent::Kind kind, LockId lock,
                                LockMode mode, TxnId txn) {
  if (!options_.record_events) return;
  RtEvent ev;
  ev.seq = seq;
  ev.kind = kind;
  ev.lock = lock;
  ev.mode = mode;
  ev.txn = txn;
  core.events.push_back(ev);
}

void RtLockService::Core::Sink::DeliverGrant(LockId lock,
                                             const QueueSlot& slot) {
  RtLockService& svc = *service;
  Core& c = *svc.cores_[static_cast<std::size_t>(core)];
  ++c.stats.grants;
  svc.grants_metric_->Inc();
  svc.RecordEvent(c, RtEvent::Kind::kGrant, lock, slot.mode, slot.txn_id);
  RtCompletion comp;
  comp.lock = lock;
  comp.mode = slot.mode;
  comp.txn = slot.txn_id;
  comp.granted_at = slot.timestamp;
  SpscRing<RtCompletion>& ring =
      *svc.comp_rings_[slot.client_node][static_cast<std::size_t>(core)];
  // Backpressure: the client is the only consumer; if its completion ring
  // is full we wait for it, never drop a grant.
  int spins = 0;
  while (!ring.TryPush(comp)) {
    if (++spins > 64) std::this_thread::yield();
  }
}

RtLockService::Stats RtLockService::TotalStats() const {
  Stats total;
  for (const auto& core : cores_) {
    total.requests += core->stats.requests;
    total.grants += core->stats.grants;
    total.releases += core->stats.releases;
    total.stale_releases += core->stats.stale_releases;
    total.mismatched_releases += core->stats.mismatched_releases;
    total.batches += core->stats.batches;
    total.max_batch = std::max(total.max_batch, core->stats.max_batch);
  }
  return total;
}

std::size_t RtLockService::TotalQueueDepth() const {
  std::size_t total = 0;
  for (const auto& core : cores_) total += core->engine->TotalQueueDepth();
  return total;
}

std::vector<RtEvent> RtLockService::DrainEvents() {
  std::vector<RtEvent> merged;
  for (auto& core : cores_) {
    merged.insert(merged.end(), core->events.begin(), core->events.end());
    core->events.clear();
  }
  std::sort(merged.begin(), merged.end(),
            [](const RtEvent& a, const RtEvent& b) { return a.seq < b.seq; });
  return merged;
}

}  // namespace netlock::rt
