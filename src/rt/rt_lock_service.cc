#include "rt/rt_lock_service.h"

#include <algorithm>
#include <thread>

#include "common/check.h"

namespace netlock::rt {

RtLockService::RtLockService(Options options, ExecutionSubstrate& substrate)
    : options_(options), substrate_(substrate), domain_(options.cores) {
  NETLOCK_CHECK(options_.cores >= 1);
  NETLOCK_CHECK(options_.num_clients >= 1);
  publish_context_ =
      options_.context != nullptr ? options_.context : &SimContext::Default();

  c_requests_ = domain_.RegisterCounter("rt.requests");
  c_grants_ = domain_.RegisterCounter("rt.grants");
  c_releases_ = domain_.RegisterCounter("rt.releases");
  c_stale_releases_ = domain_.RegisterCounter("rt.stale_releases");
  c_mismatched_releases_ = domain_.RegisterCounter("rt.mismatched_releases");
  c_batches_ = domain_.RegisterCounter("rt.batches");
  c_flushes_ = domain_.RegisterCounter("rt.flushes");
  c_staged_completions_ = domain_.RegisterCounter("rt.staged_completions");
  c_aborts_ = domain_.RegisterCounter("rt.aborts");
  c_wounds_ = domain_.RegisterCounter("rt.wounds");
  c_cancel_removed_ = domain_.RegisterCounter("rt.cancel_removed");
  c_cancel_removed_granted_ =
      domain_.RegisterCounter("rt.cancel_removed_granted");
  g_mailbox_depth_ = domain_.RegisterGauge("rt.mailbox_depth",
                                           TelemetryDomain::GaugeAgg::kSum);
  g_batch_ = domain_.RegisterGauge("rt.batch",
                                   TelemetryDomain::GaugeAgg::kMax);

  if (options_.recorder != nullptr) {
    recorder_ = options_.recorder;
  } else if (options_.telemetry) {
    owned_recorder_ = std::make_unique<FlightRecorder>(
        options_.cores, options_.flight_capacity);
    recorder_ = owned_recorder_.get();
  }

  cores_.reserve(static_cast<std::size_t>(options_.cores));
  req_rings_.resize(static_cast<std::size_t>(options_.cores));
  for (int c = 0; c < options_.cores; ++c) {
    auto core = std::make_unique<Core>();
    core->sink.service = this;
    core->sink.core = c;
    core->engine = std::make_unique<LockEngine>(core->sink);
    core->engine->set_deadlock_policy(options_.deadlock_policy);
    cores_.push_back(std::move(core));
    req_rings_[static_cast<std::size_t>(c)].reserve(
        static_cast<std::size_t>(options_.num_clients));
    for (int cl = 0; cl < options_.num_clients; ++cl) {
      req_rings_[static_cast<std::size_t>(c)].push_back(
          std::make_unique<SpscRing<RtRequest>>(options_.ring_capacity));
    }
  }
  comp_rings_.resize(static_cast<std::size_t>(options_.num_clients));
  for (int cl = 0; cl < options_.num_clients; ++cl) {
    comp_rings_[static_cast<std::size_t>(cl)].reserve(
        static_cast<std::size_t>(options_.cores));
    for (int c = 0; c < options_.cores; ++c) {
      comp_rings_[static_cast<std::size_t>(cl)].push_back(
          std::make_unique<SpscRing<RtCompletion>>(options_.ring_capacity));
    }
  }
  drain_buf_ = std::make_unique<AlignedRegions<RtRequest>>(
      static_cast<std::size_t>(options_.cores), options_.drain_batch);
  staging_.reserve(static_cast<std::size_t>(options_.cores));
  for (int c = 0; c < options_.cores; ++c) {
    auto staging = std::make_unique<CoreStaging>();
    staging->per_client.resize(static_cast<std::size_t>(options_.num_clients));
    for (auto& buf : staging->per_client) {
      buf.reserve(options_.drain_batch);
    }
    staging_.push_back(std::move(staging));
  }

  RtExecutor::Options exec;
  exec.num_workers = options_.cores;
  exec.pin_threads = options_.pin_threads;
  exec.spin_rounds = options_.spin_rounds;
  exec.yield_rounds = options_.yield_rounds;
  exec.park_timeout = options_.park_timeout;
  executor_ = std::make_unique<RtExecutor>(
      exec, [this](int worker) { return ServiceCore(worker); });
}

RtLockService::~RtLockService() { Stop(); }

void RtLockService::Start() { executor_->Start(); }

void RtLockService::Stop() {
  if (executor_->running()) {
    WaitQuiesce();
    executor_->Stop();
  }
  // Fold the sharded stats into the registry so snapshots/bench JSON see
  // the same "rt.*" totals the shared-counter implementation produced.
  // Delta-based, so a live poller having already published is fine.
  domain_.PublishTo(publish_context_->metrics());
}

int RtLockService::CoreFor(LockId lock) const {
  // Same integer-mix RSS dispatch as the simulated LockServer.
  std::uint32_t h = lock;
  h ^= h >> 16;
  h *= 0x45d9f3bu;
  h ^= h >> 16;
  return static_cast<int>(h % static_cast<std::uint32_t>(options_.cores));
}

void RtLockService::Submit(int client, const RtRequest& req) {
  const int core = CoreFor(req.lock);
  SpscRing<RtRequest>& ring =
      *req_rings_[static_cast<std::size_t>(core)]
                 [static_cast<std::size_t>(client)];
  // Count before the push: a worker may process the request the instant it
  // lands, and WaitQuiesce must never observe processed > submitted.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  int spins = 0;
  while (!ring.TryPush(req)) {
    // A full ring means the owning core fell behind (or missed a doorbell
    // and parked); a rescue wake restores liveness, but only after some
    // spinning so the common full-ring blip stays doorbell-free.
    if (++spins > 64) {
      executor_->WakeWorker(core);
      std::this_thread::yield();
    }
  }
  // One targeted doorbell per push — a relaxed load unless the owning
  // worker is actually parked (it used to ring the broadcast bell twice).
  executor_->WakeWorker(core);
}

void RtLockService::SubmitBatch(int client, int core, const RtRequest* reqs,
                                std::size_t n) {
  if (n == 0) return;
  SpscRing<RtRequest>& ring =
      *req_rings_[static_cast<std::size_t>(core)]
                 [static_cast<std::size_t>(client)];
  submitted_.fetch_add(n, std::memory_order_relaxed);
  std::size_t pushed = 0;
  int spins = 0;
  while (pushed < n) {
    const std::size_t k = ring.PushBatch(reqs + pushed, n - pushed);
    if (k == 0) {
      if (++spins > 64) {
        executor_->WakeWorker(core);
        std::this_thread::yield();
      }
      continue;
    }
    pushed += k;
    spins = 0;
  }
  // One doorbell for the whole flush, rung only at the owning worker.
  executor_->WakeWorker(core);
}

std::size_t RtLockService::PollCompletions(int client, RtCompletion* out,
                                           std::size_t max) {
  std::size_t n = 0;
  auto& rings = comp_rings_[static_cast<std::size_t>(client)];
  for (auto& ring : rings) {
    if (n >= max) break;
    n += ring->PopBatch(out + n, max - n);
  }
  return n;
}

void RtLockService::WaitQuiesce() {
  int spins = 0;
  while (processed_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    executor_->Wake();
    if (++spins > 64) std::this_thread::yield();
  }
}

std::size_t RtLockService::MailboxDepthApprox(int core) const {
  std::size_t depth = 0;
  for (const auto& ring : req_rings_[static_cast<std::size_t>(core)]) {
    depth += ring->SizeApprox();
  }
  return depth;
}

bool RtLockService::ServiceCore(int core) {
  Core& c = *cores_[static_cast<std::size_t>(core)];
  RtRequest* buf = drain_buf_->region(static_cast<std::size_t>(core));
  bool any = false;
  std::size_t processed = 0;
  for (auto& ring : req_rings_[static_cast<std::size_t>(core)]) {
    const std::size_t n = ring->PopBatch(buf, options_.drain_batch);
    if (n == 0) continue;
    any = true;
    domain_.Inc(core, c_batches_);
    domain_.GaugeSet(core, g_batch_, n);  // hwm tracks the largest drain.
    for (std::size_t i = 0; i < n; ++i) Process(core, c, buf[i]);
    processed += n;
  }
  // Flush staged grants before acknowledging the requests as processed, so
  // WaitQuiesce implies every completion is visible in its client ring.
  if (options_.batch_submit && any) FlushStaged(core);
  if (processed != 0) {
    processed_.fetch_add(processed, std::memory_order_release);
  }
  if (any) {
    domain_.GaugeSet(core, g_mailbox_depth_, MailboxDepthApprox(core));
  } else if (domain_.GaugeShard(core, g_mailbox_depth_) != 0) {
    domain_.GaugeSet(core, g_mailbox_depth_, 0);
  }
  return any;
}

void RtLockService::Process(int core_idx, Core& core, const RtRequest& req) {
  const SimTime now = substrate_.Now();
  if (req.op == RtRequest::Op::kAcquire) {
    domain_.Inc(core_idx, c_requests_);
    if (recorder_ != nullptr) {
      recorder_->Record(core_idx, FlightRecorder::Op::kAccept, req.lock,
                        req.mode, req.txn, now, req.client);
    }
    RecordEvent(core, RtEvent::Kind::kAccept, req.lock, req.mode, req.txn);
    QueueSlot slot;
    slot.mode = req.mode;
    slot.txn_id = req.txn;
    slot.client_node = req.client;  // Client-thread index, not a NodeId.
    core.engine->Acquire(req.lock, slot, now);
    return;
  }
  if (req.op == RtRequest::Op::kCancel) {
    // Reserve the abort event's sequence before entering the engine, like
    // a release: RemoveTxn's cascade grants must sort after the removal.
    std::uint64_t cancel_seq = 0;
    if (options_.record_events) {
      cancel_seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
    }
    const LockEngine::RemoveResult removed = core.engine->RemoveTxn(
        req.lock, req.txn, now, /*notify=*/false);
    if (removed.removed != 0) {
      domain_.Inc(core_idx, c_cancel_removed_, removed.removed);
      if (removed.removed_granted != 0) {
        domain_.Inc(core_idx, c_cancel_removed_granted_,
                    removed.removed_granted);
      }
      if (recorder_ != nullptr) {
        recorder_->Record(core_idx, FlightRecorder::Op::kCancel, req.lock,
                          req.mode, req.txn, now, req.client);
      }
      // One kAbort event covers every removed entry of the pair: replay
      // drops all of (lock, txn)'s holder state at once.
      AppendEvent(core, cancel_seq, RtEvent::Kind::kAbort, req.lock,
                  req.mode, req.txn);
    }
    return;
  }
  // Reserve the release's sequence number before entering the engine: the
  // grant cascade runs inside Release(), and its kGrant events must sort
  // after the release that enabled them, or oracle replay would see the
  // next holder granted while the previous one still holds.
  std::uint64_t release_seq = 0;
  if (options_.record_events) {
    release_seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  const ReleaseOutcome outcome = core.engine->Release(
      req.lock, req.mode, req.txn, /*lease_forced=*/false, now);
  switch (outcome) {
    case ReleaseOutcome::kApplied:
      domain_.Inc(core_idx, c_releases_);
      if (recorder_ != nullptr) {
        recorder_->Record(core_idx, FlightRecorder::Op::kRelease, req.lock,
                          req.mode, req.txn, now, req.client);
      }
      AppendEvent(core, release_seq, RtEvent::Kind::kRelease, req.lock,
                  req.mode, req.txn);
      break;
    case ReleaseOutcome::kStale:
      domain_.Inc(core_idx, c_stale_releases_);
      if (recorder_ != nullptr) {
        recorder_->Record(core_idx, FlightRecorder::Op::kStaleRelease,
                          req.lock, req.mode, req.txn, now, req.client);
      }
      break;
    case ReleaseOutcome::kMismatched:
      domain_.Inc(core_idx, c_mismatched_releases_);
      if (recorder_ != nullptr) {
        recorder_->Record(core_idx, FlightRecorder::Op::kMismatchedRelease,
                          req.lock, req.mode, req.txn, now, req.client);
      }
      break;
  }
}

void RtLockService::RecordEvent(Core& core, RtEvent::Kind kind, LockId lock,
                                LockMode mode, TxnId txn) {
  if (!options_.record_events) return;
  AppendEvent(core, event_seq_.fetch_add(1, std::memory_order_relaxed),
              kind, lock, mode, txn);
}

void RtLockService::AppendEvent(Core& core, std::uint64_t seq,
                                RtEvent::Kind kind, LockId lock,
                                LockMode mode, TxnId txn) {
  if (!options_.record_events) return;
  RtEvent ev;
  ev.seq = seq;
  ev.kind = kind;
  ev.lock = lock;
  ev.mode = mode;
  ev.txn = txn;
  core.events.push_back(ev);
}

void RtLockService::Core::Sink::DeliverGrant(LockId lock,
                                             const QueueSlot& slot) {
  RtLockService& svc = *service;
  Core& c = *svc.cores_[static_cast<std::size_t>(core)];
  svc.domain_.Inc(core, svc.c_grants_);
  if (svc.recorder_ != nullptr) {
    svc.recorder_->Record(core, FlightRecorder::Op::kGrant, lock, slot.mode,
                          slot.txn_id, slot.timestamp,
                          static_cast<std::uint32_t>(slot.client_node));
  }
  svc.RecordEvent(c, RtEvent::Kind::kGrant, lock, slot.mode, slot.txn_id);
  RtCompletion comp;
  comp.lock = lock;
  comp.mode = slot.mode;
  comp.txn = slot.txn_id;
  comp.granted_at = slot.timestamp;
  svc.DeliverCompletion(core, comp,
                        static_cast<std::uint32_t>(slot.client_node));
}

void RtLockService::Core::Sink::DeliverAbort(LockId lock,
                                             const QueueSlot& slot,
                                             AbortReason reason) {
  RtLockService& svc = *service;
  Core& c = *svc.cores_[static_cast<std::size_t>(core)];
  svc.domain_.Inc(core, reason == AbortReason::kWound ? svc.c_wounds_
                                                      : svc.c_aborts_);
  if (svc.recorder_ != nullptr) {
    svc.recorder_->Record(core, FlightRecorder::Op::kAbort, lock, slot.mode,
                          slot.txn_id, svc.substrate_.Now(),
                          static_cast<std::uint32_t>(slot.client_node));
  }
  // Fired before the wound's cascade grants (engine contract), so the
  // replayed abort always precedes the grants it enabled.
  svc.RecordEvent(c, RtEvent::Kind::kAbort, lock, slot.mode, slot.txn_id);
  RtCompletion comp;
  comp.lock = lock;
  comp.mode = slot.mode;
  comp.txn = slot.txn_id;
  comp.status = RtCompletion::Status::kAborted;
  comp.reason = reason;
  svc.DeliverCompletion(core, comp,
                        static_cast<std::uint32_t>(slot.client_node));
}

void RtLockService::DeliverCompletion(int core, const RtCompletion& comp,
                                      std::uint32_t client) {
  if (options_.batch_submit) {
    // Stage it; ServiceCore flushes the whole batch after the drain. The
    // cascade never blocks on a slow client's full completion ring.
    staging_[static_cast<std::size_t>(core)]->per_client[client].push_back(
        comp);
    return;
  }
  SpscRing<RtCompletion>& ring =
      *comp_rings_[client][static_cast<std::size_t>(core)];
  // Backpressure: the client is the only consumer; if its completion ring
  // is full we wait for it, never drop a completion.
  int spins = 0;
  while (!ring.TryPush(comp)) {
    if (++spins > 64) std::this_thread::yield();
  }
}

void RtLockService::FlushStaged(int core) {
  CoreStaging& staging = *staging_[static_cast<std::size_t>(core)];
  for (std::size_t cl = 0; cl < staging.per_client.size(); ++cl) {
    std::vector<RtCompletion>& buf = staging.per_client[cl];
    if (buf.empty()) continue;
    SpscRing<RtCompletion>& ring =
        *comp_rings_[cl][static_cast<std::size_t>(core)];
    std::size_t pushed = 0;
    int spins = 0;
    // Backpressure as before — but here, between drains, not mid-cascade.
    while (pushed < buf.size()) {
      const std::size_t k =
          ring.PushBatch(buf.data() + pushed, buf.size() - pushed);
      if (k == 0) {
        if (++spins > 64) std::this_thread::yield();
        continue;
      }
      pushed += k;
      spins = 0;
    }
    domain_.Inc(core, c_flushes_);
    domain_.Inc(core, c_staged_completions_, buf.size());
    buf.clear();
  }
}

RtLockService::Stats RtLockService::CoreStats(int core) const {
  Stats s;
  s.requests = domain_.CounterShard(core, c_requests_);
  s.grants = domain_.CounterShard(core, c_grants_);
  s.releases = domain_.CounterShard(core, c_releases_);
  s.stale_releases = domain_.CounterShard(core, c_stale_releases_);
  s.mismatched_releases = domain_.CounterShard(core, c_mismatched_releases_);
  s.batches = domain_.CounterShard(core, c_batches_);
  s.max_batch = domain_.GaugeShardHighWater(core, g_batch_);
  s.flushes = domain_.CounterShard(core, c_flushes_);
  s.staged_completions = domain_.CounterShard(core, c_staged_completions_);
  s.aborts = domain_.CounterShard(core, c_aborts_);
  s.wounds = domain_.CounterShard(core, c_wounds_);
  s.cancel_removed = domain_.CounterShard(core, c_cancel_removed_);
  s.cancel_removed_granted =
      domain_.CounterShard(core, c_cancel_removed_granted_);
  return s;
}

RtLockService::Stats RtLockService::TotalStats() const {
  Stats total;
  total.requests = domain_.CounterTotal(c_requests_);
  total.grants = domain_.CounterTotal(c_grants_);
  total.releases = domain_.CounterTotal(c_releases_);
  total.stale_releases = domain_.CounterTotal(c_stale_releases_);
  total.mismatched_releases = domain_.CounterTotal(c_mismatched_releases_);
  total.batches = domain_.CounterTotal(c_batches_);
  total.max_batch = domain_.GaugeHighWater(g_batch_);
  total.flushes = domain_.CounterTotal(c_flushes_);
  total.staged_completions = domain_.CounterTotal(c_staged_completions_);
  total.aborts = domain_.CounterTotal(c_aborts_);
  total.wounds = domain_.CounterTotal(c_wounds_);
  total.cancel_removed = domain_.CounterTotal(c_cancel_removed_);
  total.cancel_removed_granted =
      domain_.CounterTotal(c_cancel_removed_granted_);
  return total;
}

std::size_t RtLockService::TotalQueueDepth() const {
  std::size_t total = 0;
  for (const auto& core : cores_) total += core->engine->TotalQueueDepth();
  return total;
}

std::vector<RtEvent> RtLockService::DrainEvents() {
  std::vector<RtEvent> merged;
  for (auto& core : cores_) {
    merged.insert(merged.end(), core->events.begin(), core->events.end());
    core->events.clear();
  }
  std::sort(merged.begin(), merged.end(),
            [](const RtEvent& a, const RtEvent& b) { return a.seq < b.seq; });
  return merged;
}

}  // namespace netlock::rt
