// Cache-line-aligned per-region scratch arrays.
//
// The rt backend keeps one scratch region per worker core (drain buffers,
// staging headers). A plain vector sized cores*region packs the regions
// back to back, so the boundary line is shared by two cores and every
// write near it ping-pongs between their caches. AlignedRegions rounds
// each region up to whole cache lines and aligns the base, so region i is
// exclusively core i's.
#pragma once

#include <cstddef>
#include <new>

namespace netlock::rt {

template <typename T>
class AlignedRegions {
 public:
  static constexpr std::size_t kLine = 64;

  AlignedRegions(std::size_t regions, std::size_t elems_per_region)
      : regions_(regions) {
    // Smallest element count >= elems_per_region whose byte size is a
    // whole number of cache lines.
    stride_ = elems_per_region;
    while ((stride_ * sizeof(T)) % kLine != 0) ++stride_;
    const std::size_t total = regions_ * stride_;
    data_ = static_cast<T*>(
        ::operator new(total * sizeof(T), std::align_val_t{kLine}));
    for (std::size_t i = 0; i < total; ++i) new (data_ + i) T();
  }

  ~AlignedRegions() {
    const std::size_t total = regions_ * stride_;
    for (std::size_t i = 0; i < total; ++i) data_[i].~T();
    ::operator delete(data_, std::align_val_t{kLine});
  }

  AlignedRegions(const AlignedRegions&) = delete;
  AlignedRegions& operator=(const AlignedRegions&) = delete;

  T* region(std::size_t i) { return data_ + i * stride_; }
  const T* region(std::size_t i) const { return data_ + i * stride_; }
  std::size_t stride() const { return stride_; }
  std::size_t regions() const { return regions_; }

 private:
  std::size_t regions_;
  std::size_t stride_;
  T* data_ = nullptr;
};

}  // namespace netlock::rt
