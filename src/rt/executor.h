// N-worker real-time executor with spin-then-park idling.
//
// Each worker repeatedly invokes the body with its worker index; the body
// returns whether it found work (drained any mailbox). Workers that come
// up empty first spin (lowest latency while traffic flows), then yield,
// then park on a per-worker condvar with a bounded timeout — so an idle
// backend burns no CPU, yet a missed doorbell can only delay work by the
// park timeout, never hang it. Producers ring WakeWorker(core) after
// enqueueing; the doorbell is one relaxed load of that worker's parked
// flag unless the worker is actually parked, and waking core w never
// disturbs the other workers.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace netlock::rt {

class RtExecutor {
 public:
  struct Options {
    int num_workers = 1;
    /// Pin worker i to CPU i (best effort, Linux only). Off by default:
    /// tests and CI runners share machines.
    bool pin_threads = false;
    /// Empty polls before yielding, then yields before parking.
    int spin_rounds = 256;
    int yield_rounds = 16;
    std::chrono::microseconds park_timeout{100};
  };

  /// `body(worker)` processes one round of work; returns true if any.
  RtExecutor(Options options, std::function<bool(int)> body);
  ~RtExecutor();

  RtExecutor(const RtExecutor&) = delete;
  RtExecutor& operator=(const RtExecutor&) = delete;

  void Start();
  /// Signals shutdown and joins. Workers exit after their next empty round,
  /// so everything already enqueued when Stop() is called gets processed.
  void Stop();

  /// Targeted doorbell: wakes one worker, and only touches its lock when
  /// the worker may actually be parked (one relaxed load otherwise). A
  /// producer that just filled core w's mailbox rings this instead of the
  /// broadcast Wake() so an idle fleet isn't herded awake per submit.
  void WakeWorker(int worker) {
    ParkSlot& slot = *park_slots_[static_cast<std::size_t>(worker)];
    if (!slot.parked.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.cv.notify_one();
  }

  /// Whether worker may currently be parked (relaxed; may be stale).
  bool WorkerMaybeParked(int worker) const {
    return park_slots_[static_cast<std::size_t>(worker)]->parked.load(
        std::memory_order_relaxed);
  }

  /// Broadcast doorbell: wakes every parked worker. Cheap when nobody is.
  void Wake() {
    for (int w = 0; w < options_.num_workers; ++w) WakeWorker(w);
  }

  int num_workers() const { return options_.num_workers; }
  bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Cumulative idle-behavior counters for one worker. Each cell has a
  /// single writer (the worker itself, relaxed load+store); readers (the
  /// stats poller, netlock_top) see slightly stale but tear-free values.
  struct IdleStats {
    std::uint64_t work_rounds = 0;  ///< Body invocations that found work.
    std::uint64_t spins = 0;        ///< Empty rounds burned spinning.
    std::uint64_t yields = 0;       ///< Empty rounds that yielded.
    std::uint64_t parks = 0;        ///< Condvar parks (timeout or doorbell).
  };
  IdleStats idle_stats(int worker) const {
    const WorkerStats& w = *stats_[static_cast<std::size_t>(worker)];
    IdleStats out;
    out.work_rounds = w.work_rounds.load(std::memory_order_relaxed);
    out.spins = w.spins.load(std::memory_order_relaxed);
    out.yields = w.yields.load(std::memory_order_relaxed);
    out.parks = w.parks.load(std::memory_order_relaxed);
    return out;
  }

 private:
  /// One cacheline per worker so the single-writer increments never
  /// false-share.
  struct alignas(64) WorkerStats {
    std::atomic<std::uint64_t> work_rounds{0};
    std::atomic<std::uint64_t> spins{0};
    std::atomic<std::uint64_t> yields{0};
    std::atomic<std::uint64_t> parks{0};
  };

  /// Per-worker park state, cache-line isolated: each worker parks on its
  /// own condvar, so a doorbell for core w contends only with worker w —
  /// never a herd — and the `parked` flag gives producers the cheap
  /// "may be parked" test.
  struct alignas(64) ParkSlot {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> parked{false};
  };

  void WorkerMain(int worker);

  Options options_;
  std::function<bool(int)> body_;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<ParkSlot>> park_slots_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<WorkerStats>> stats_;
};

}  // namespace netlock::rt
