// N-worker real-time executor with spin-then-park idling.
//
// Each worker repeatedly invokes the body with its worker index; the body
// returns whether it found work (drained any mailbox). Workers that come
// up empty first spin (lowest latency while traffic flows), then yield,
// then park on a condvar with a bounded timeout — so an idle backend burns
// no CPU, yet a missed doorbell can only delay work by the park timeout,
// never hang it. Producers ring Wake() after enqueueing; the doorbell is a
// cheap relaxed load unless someone is actually parked.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace netlock::rt {

class RtExecutor {
 public:
  struct Options {
    int num_workers = 1;
    /// Pin worker i to CPU i (best effort, Linux only). Off by default:
    /// tests and CI runners share machines.
    bool pin_threads = false;
    /// Empty polls before yielding, then yields before parking.
    int spin_rounds = 256;
    int yield_rounds = 16;
    std::chrono::microseconds park_timeout{100};
  };

  /// `body(worker)` processes one round of work; returns true if any.
  RtExecutor(Options options, std::function<bool(int)> body);
  ~RtExecutor();

  RtExecutor(const RtExecutor&) = delete;
  RtExecutor& operator=(const RtExecutor&) = delete;

  void Start();
  /// Signals shutdown and joins. Workers exit after their next empty round,
  /// so everything already enqueued when Stop() is called gets processed.
  void Stop();

  /// Doorbell: wakes parked workers. Cheap when nobody is parked.
  void Wake() {
    if (parked_.load(std::memory_order_relaxed) == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }

  int num_workers() const { return options_.num_workers; }
  bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  void WorkerMain(int worker);

  Options options_;
  std::function<bool(int)> body_;
  std::atomic<bool> running_{false};
  std::atomic<int> parked_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
};

}  // namespace netlock::rt
