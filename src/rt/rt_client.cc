#include "rt/rt_client.h"

#include "common/check.h"

namespace netlock::rt {

RtClientPool::RtClientPool(RtLockService& service,
                           ExecutionSubstrate& substrate,
                           RtClientConfig config, WorkloadFactory factory)
    : service_(service),
      substrate_(substrate),
      config_(config),
      factory_(std::move(factory)),
      domain_(service.num_clients()) {
  NETLOCK_CHECK(config_.sessions_per_client >= 1);
  NETLOCK_CHECK(factory_ != nullptr);
  if (config_.telemetry) {
    c_commits_ = domain_.RegisterCounter("rt.commits");
    h_lock_latency_ = domain_.RegisterHistogram("rt.lock_latency");
    h_txn_latency_ = domain_.RegisterHistogram("rt.txn_latency");
  }
  const int num_clients = service_.num_clients();
  threads_.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    auto ct = std::make_unique<ClientThread>();
    ct->index = c;
    ct->first_session = c * config_.sessions_per_client;
    ct->sessions.resize(
        static_cast<std::size_t>(config_.sessions_per_client));
    for (int s = 0; s < config_.sessions_per_client; ++s) {
      Session& sess = ct->sessions[static_cast<std::size_t>(s)];
      const int global = ct->first_session + s;
      sess.rng = Rng(config_.seed * 1000003ull +
                     static_cast<std::uint64_t>(global));
      sess.workload = factory_(global);
      NETLOCK_CHECK(sess.workload != nullptr);
      sess.engine_id = static_cast<std::uint32_t>(global + 1);
    }
    if (config_.batch_submit) {
      ct->staged.resize(static_cast<std::size_t>(service_.cores()));
      for (auto& buf : ct->staged) buf.reserve(config_.poll_batch);
    }
    threads_.push_back(std::move(ct));
  }
}

RtClientPool::~RtClientPool() { Join(); }

void RtClientPool::Start() {
  NETLOCK_CHECK(!started_);
  started_ = true;
  for (auto& ct : threads_) {
    ct->thread = std::thread([this, t = ct.get()]() { RunClient(*t); });
  }
}

void RtClientPool::Join() {
  if (!started_ || joined_) return;
  joined_ = true;
  for (auto& ct : threads_) {
    if (ct->thread.joinable()) ct->thread.join();
  }
}

void RtClientPool::RunClient(ClientThread& ct) {
  std::size_t live = 0;
  for (Session& s : ct.sessions) {
    s.active = true;
    ++live;
    BeginTxn(ct, s);
  }
  FlushStaged(ct);  // Every session's first acquire, one flush per core.
  std::vector<RtCompletion> buf(config_.poll_batch);
  int idle = 0;
  while (live > 0) {
    const std::size_t n =
        service_.PollCompletions(ct.index, buf.data(), buf.size());
    std::size_t idled = 0;
    const std::size_t resumed = ResumeBackoffs(ct, idled);
    live -= idled;
    if (n == 0 && resumed == 0) {
      if (++idle > 64) std::this_thread::yield();
      continue;
    }
    idle = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (OnGrant(ct, buf[i])) --live;
    }
    // One flush per poll iteration: everything OnGrant staged (next
    // acquires, commit releases, cancels) and every resumed session's
    // first acquire goes out in per-core batches.
    FlushStaged(ct);
  }
  // The OnGrant that idled the last session staged its final releases
  // after the flush above — push them before the thread exits, or the
  // engine would leak held locks.
  FlushStaged(ct);
}

void RtClientPool::EnqueueRequest(ClientThread& ct, const RtRequest& rt) {
  if (!config_.batch_submit) {
    service_.Submit(ct.index, rt);
    return;
  }
  ct.staged[static_cast<std::size_t>(service_.CoreFor(rt.lock))]
      .push_back(rt);
}

void RtClientPool::FlushStaged(ClientThread& ct) {
  if (!config_.batch_submit) return;
  for (std::size_t core = 0; core < ct.staged.size(); ++core) {
    std::vector<RtRequest>& buf = ct.staged[core];
    if (buf.empty()) continue;
    service_.SubmitBatch(ct.index, static_cast<int>(core), buf.data(),
                         buf.size());
    buf.clear();
  }
}

void RtClientPool::BeginTxn(ClientThread& ct, Session& s) {
  s.current = s.workload->Next(s.rng);
  NETLOCK_CHECK(!s.current.locks.empty());
  // Workloads emit sorted, deduplicated lock sets (deadlock avoidance by
  // global order) and rt conflict units are the lock ids themselves, so no
  // re-normalization is needed here.
  s.txn = (static_cast<TxnId>(s.engine_id) << 40) | ++s.counter;
  s.next_lock = 0;
  s.txn_start = substrate_.Now();
  SubmitAcquire(ct, s);
}

void RtClientPool::SubmitAcquire(ClientThread& ct, Session& s) {
  const LockRequest& req = s.current.locks[s.next_lock];
  s.lock_issue = substrate_.Now();
  if (recording_.load(std::memory_order_acquire)) {
    ++ct.metrics.lock_requests;
  }
  RtRequest rt;
  rt.op = RtRequest::Op::kAcquire;
  rt.mode = req.mode;
  rt.lock = req.lock;
  rt.txn = s.txn;
  rt.client = static_cast<std::uint32_t>(ct.index);
  EnqueueRequest(ct, rt);
}

bool RtClientPool::OnGrant(ClientThread& ct, const RtCompletion& comp) {
  const int global = static_cast<int>(comp.txn >> 40) - 1;
  const int local = global - ct.first_session;
  NETLOCK_CHECK(local >= 0 &&
                local < static_cast<int>(ct.sessions.size()));
  Session& s = ct.sessions[static_cast<std::size_t>(local)];
  if (comp.txn != s.txn || !s.active || s.backoff) {
    // Stale: a completion for a transaction the session already aborted.
    // Any stale *grant*'s queue entry was covered by the abort's kCancel
    // (or removed by the wound itself), so dropping it leaks nothing.
    return false;
  }
  if (comp.status == RtCompletion::Status::kAborted) {
    OnAbort(ct, s, comp);
    return false;
  }
  NETLOCK_CHECK(s.next_lock < s.current.locks.size());
  NETLOCK_CHECK(comp.lock == s.current.locks[s.next_lock].lock);
  const bool rec = recording_.load(std::memory_order_acquire);
  if (rec || config_.telemetry) {
    // One clock read feeds both the windowed RunMetrics recorder and the
    // always-on sharded histogram.
    const SimTime now = substrate_.Now();
    if (config_.telemetry) {
      domain_.Record(ct.index, h_lock_latency_, now - s.lock_issue);
    }
    if (rec) {
      ++ct.metrics.lock_grants;
      ct.metrics.lock_latency.Record(now - s.lock_issue);
    }
  }
  ++s.next_lock;
  if (s.next_lock < s.current.locks.size()) {
    SubmitAcquire(ct, s);
    return false;
  }
  // All locks held: commit and release (no think time — the rt backend
  // measures the lock service, not a database).
  for (const LockRequest& req : s.current.locks) {
    RtRequest rt;
    rt.op = RtRequest::Op::kRelease;
    rt.mode = req.mode;
    rt.lock = req.lock;
    rt.txn = s.txn;
    rt.client = static_cast<std::uint32_t>(ct.index);
    EnqueueRequest(ct, rt);
  }
  ++ct.commits;
  ++s.committed;
  ct.committed_lock_grants += s.current.locks.size();
  if (rec || config_.telemetry) {
    const SimTime now = substrate_.Now();
    if (config_.telemetry) {
      domain_.Inc(ct.index, c_commits_);
      domain_.Record(ct.index, h_txn_latency_, now - s.txn_start);
    }
    if (rec) {
      ++ct.metrics.txn_commits;
      ct.metrics.txn_latency.Record(now - s.txn_start);
    }
  }
  const bool budget_done = config_.txns_per_session != 0 &&
                           s.committed >= config_.txns_per_session;
  if (budget_done || stop_.load(std::memory_order_acquire)) {
    s.active = false;
    return true;
  }
  BeginTxn(ct, s);
  return false;
}

void RtClientPool::OnAbort(ClientThread& ct, Session& s,
                           const RtCompletion& comp) {
  ++ct.aborts;
  if (recording_.load(std::memory_order_acquire)) ++ct.metrics.retries;
  // Was the aborted entry our still-pending acquire (die / wound of a
  // not-yet-granted entry) or an already-held lock (wound)? Per-core FIFO
  // completion order guarantees a grant always precedes a wound of the
  // same entry, so this test is unambiguous.
  const bool pending = s.next_lock < s.current.locks.size() &&
                       comp.lock == s.current.locks[s.next_lock].lock;
  if (!pending) ++ct.wounds;
  // Two-phase-locking abort: release the held prefix. A wounded held lock
  // is skipped — its queue entry is already gone, and releasing it would
  // pop some other waiter's entry.
  for (std::size_t i = 0; i < s.next_lock; ++i) {
    const LockRequest& req = s.current.locks[i];
    if (!pending && req.lock == comp.lock) continue;
    RtRequest rt;
    rt.op = RtRequest::Op::kRelease;
    rt.mode = req.mode;
    rt.lock = req.lock;
    rt.txn = s.txn;
    rt.client = static_cast<std::uint32_t>(ct.index);
    EnqueueRequest(ct, rt);
  }
  // A wound with an acquire still in flight: that acquire can no longer be
  // answered usefully — tell the manager to drop whatever entry it creates
  // (idempotent if it never queued), so a doomed entry never stalls the
  // queue. Submitted through the same mailbox as the acquire, so it is
  // processed after it.
  if (!pending && s.next_lock < s.current.locks.size()) {
    const LockRequest& req = s.current.locks[s.next_lock];
    RtRequest rt;
    rt.op = RtRequest::Op::kCancel;
    rt.mode = req.mode;
    rt.lock = req.lock;
    rt.txn = s.txn;
    rt.client = static_cast<std::uint32_t>(ct.index);
    EnqueueRequest(ct, rt);
  }
  s.backoff = true;
  s.retry_at = substrate_.Now() + config_.abort_backoff;
}

std::size_t RtClientPool::ResumeBackoffs(ClientThread& ct,
                                         std::size_t& idled) {
  bool any = false;
  for (const Session& s : ct.sessions) {
    if (s.backoff) {
      any = true;
      break;
    }
  }
  if (!any) return 0;
  std::size_t resumed = 0;
  const SimTime now = substrate_.Now();
  for (Session& s : ct.sessions) {
    if (!s.backoff || now < s.retry_at) continue;
    s.backoff = false;
    if (stop_.load(std::memory_order_acquire)) {
      s.active = false;
      ++idled;
      continue;
    }
    // Fresh (younger) txn id, same spec — mirrors the simulated TxnEngine,
    // which is what keeps fixed-count commit totals backend-identical.
    s.txn = (static_cast<TxnId>(s.engine_id) << 40) | ++s.counter;
    s.next_lock = 0;
    s.txn_start = now;
    SubmitAcquire(ct, s);
    ++resumed;
  }
  return resumed;
}

RunMetrics RtClientPool::Collect() const {
  RunMetrics total;
  for (const auto& ct : threads_) {
    total.lock_grants += ct->metrics.lock_grants;
    total.lock_requests += ct->metrics.lock_requests;
    total.txn_commits += ct->metrics.txn_commits;
    total.lock_latency.Merge(ct->metrics.lock_latency);
    total.txn_latency.Merge(ct->metrics.txn_latency);
  }
  return total;
}

std::uint64_t RtClientPool::TotalCommits() const {
  std::uint64_t total = 0;
  for (const auto& ct : threads_) total += ct->commits;
  return total;
}

std::uint64_t RtClientPool::TotalAborts() const {
  std::uint64_t total = 0;
  for (const auto& ct : threads_) total += ct->aborts;
  return total;
}

std::uint64_t RtClientPool::TotalWounds() const {
  std::uint64_t total = 0;
  for (const auto& ct : threads_) total += ct->wounds;
  return total;
}

std::uint64_t RtClientPool::TotalCommittedLockGrants() const {
  std::uint64_t total = 0;
  for (const auto& ct : threads_) total += ct->committed_lock_grants;
  return total;
}

}  // namespace netlock::rt
