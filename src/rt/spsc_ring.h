// Bounded lock-free single-producer/single-consumer ring buffer.
//
// The real-time backend's only inter-thread channel: client threads push
// requests into per-(core, client) rings and pop completions from
// per-(client, core) rings, so every ring has exactly one producer and one
// consumer and needs no locks — the shared-nothing mailbox fabric of the
// DPDK prototype. Head and tail live on separate cache lines, and each
// side keeps a cached copy of the other's index so the common case touches
// one shared atomic per operation.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace netlock::rt {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (>= 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when full.
  bool TryPush(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool TryPop(T* out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: pushes up to `n` items from `src`, returning the count
  /// pushed (0 when full). One release-store publishes the whole batch —
  /// the submit-batching twin of PopBatch: a flush of k requests costs one
  /// shared-atomic publish instead of k.
  std::size_t PushBatch(const T* src, std::size_t n) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = mask_ + 1 - (tail - cached_head_);
    if (free < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = mask_ + 1 - (tail - cached_head_);
      if (free == 0) return 0;
    }
    const std::size_t k = n < free ? n : free;
    for (std::size_t i = 0; i < k; ++i) {
      slots_[(tail + i) & mask_] = src[i];
    }
    tail_.store(tail + k, std::memory_order_release);
    return k;
  }

  /// Consumer side: pops up to `max` items into `out`, returning the count.
  /// One acquire-load covers the whole batch — this is the request-batching
  /// point of the backend's mailbox drain.
  std::size_t PopBatch(T* out, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return 0;
    }
    std::size_t n = cached_tail_ - head;
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Approximate (exact when the producer is quiescent).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy — two relaxed loads, safe from any thread. The
  /// stats poller samples this for the live mailbox-depth gauge.
  std::size_t SizeApprox() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< Consumer index.
  alignas(64) std::size_t cached_tail_ = 0;       ///< Consumer's view.
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< Producer index.
  alignas(64) std::size_t cached_head_ = 0;       ///< Producer's view.
};

}  // namespace netlock::rt
