#include "rt/executor.h"

#include <algorithm>

#include "common/check.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace netlock::rt {

RtExecutor::RtExecutor(Options options, std::function<bool(int)> body)
    : options_(options), body_(std::move(body)) {
  NETLOCK_CHECK(options_.num_workers >= 1);
  NETLOCK_CHECK(body_ != nullptr);
  stats_.reserve(static_cast<std::size_t>(options_.num_workers));
  park_slots_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    stats_.push_back(std::make_unique<WorkerStats>());
    park_slots_.push_back(std::make_unique<ParkSlot>());
  }
}

RtExecutor::~RtExecutor() { Stop(); }

void RtExecutor::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  threads_.reserve(options_.num_workers);
  for (int w = 0; w < options_.num_workers; ++w) {
    threads_.emplace_back([this, w]() { WorkerMain(w); });
  }
}

void RtExecutor::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  running_.store(false, std::memory_order_release);
  // Unconditional notify under each slot's lock: a worker holds its slot
  // lock from the running_ re-check to the wait, so it either sees the
  // store or receives the notify — no lost-shutdown window.
  for (auto& slot : park_slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->cv.notify_all();
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void RtExecutor::WorkerMain(int worker) {
#ifdef __linux__
  if (options_.pin_threads) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(worker) %
                static_cast<unsigned>(
                    std::max(1u, std::thread::hardware_concurrency())),
            &set);
    // Best effort: a denied affinity request is not an error.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
  WorkerStats& stats = *stats_[static_cast<std::size_t>(worker)];
  // Single-writer counters: load+store (no RMW) keeps the increment a
  // plain cached write.
  const auto bump = [](std::atomic<std::uint64_t>& cell) {
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  };
  int idle_rounds = 0;
  while (running_.load(std::memory_order_acquire)) {
    if (body_(worker)) {
      bump(stats.work_rounds);
      idle_rounds = 0;
      continue;
    }
    ++idle_rounds;
    if (idle_rounds <= options_.spin_rounds) {
      bump(stats.spins);
      continue;
    }
    if (idle_rounds <= options_.spin_rounds + options_.yield_rounds) {
      bump(stats.yields);
      std::this_thread::yield();
      continue;
    }
    // Park on this worker's own slot. The timeout bounds the cost of a
    // doorbell raced with parking: worst case, work waits one park_timeout.
    ParkSlot& slot = *park_slots_[static_cast<std::size_t>(worker)];
    std::unique_lock<std::mutex> lock(slot.mu);
    if (!running_.load(std::memory_order_acquire)) break;
    bump(stats.parks);
    slot.parked.store(true, std::memory_order_relaxed);
    slot.cv.wait_for(lock, options_.park_timeout);
    slot.parked.store(false, std::memory_order_relaxed);
    idle_rounds = 0;
  }
  // Shutdown drain: work enqueued before Stop()'s running_ store must be
  // processed, per the Stop() contract. Run until one empty round.
  while (body_(worker)) {
  }
}

}  // namespace netlock::rt
