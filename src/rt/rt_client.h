// Closed-loop client workers for the real-time backend.
//
// The wall-clock twin of the simulated TxnEngine: each client thread
// multiplexes several closed-loop sessions, each drawing transactions from
// its own workload generator + Rng (seeded exactly like the simulated
// engines, so the per-session request streams are identical across
// backends), acquiring the locks in order (two-phase locking, growing
// phase), then releasing and committing. Sessions are coroutine-style
// state machines: a thread submits an acquire, and the session advances
// only when the matching grant appears in its completion ring — so one
// thread drives many concurrent transactions without blocking.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/telemetry.h"
#include "common/types.h"
#include "rt/rt_lock_service.h"
#include "substrate/execution_substrate.h"
#include "workload/workload.h"

namespace netlock::rt {

struct RtClientConfig {
  int sessions_per_client = 4;
  /// Transactions each session commits before going idle; 0 = keep issuing
  /// until StopIssuing() (timed benchmark mode).
  std::uint64_t txns_per_session = 0;
  /// Per-session seeds follow the simulated testbed: seed * 1000003 + i.
  std::uint64_t seed = 1;
  std::size_t poll_batch = 64;
  /// Stage submits in per-core buffers and flush each once per poll-loop
  /// iteration via RtLockService::SubmitBatch — one ring publish and one
  /// doorbell per flush instead of per request. Off = legacy per-request
  /// Submit, kept as the --batch-submit A/B baseline.
  bool batch_submit = true;
  /// Always-on sharded latency histograms ("rt.lock_latency",
  /// "rt.txn_latency"), one shard per client thread — what the live stats
  /// poller and netlock_top read. Off for `--telemetry=off` overhead runs;
  /// the RunMetrics recorders (measurement window only) are unaffected.
  bool telemetry = true;
  /// Wall-clock backoff before a policy-aborted transaction retries (same
  /// spec, fresh — younger — txn id).
  SimTime abort_backoff = 100 * kMicrosecond;
};

class RtClientPool {
 public:
  /// `session` is the global session index (unique across client threads),
  /// matching the engine index the simulated Testbed passes its factory.
  using WorkloadFactory =
      std::function<std::unique_ptr<WorkloadGenerator>(int session)>;

  RtClientPool(RtLockService& service, ExecutionSubstrate& substrate,
               RtClientConfig config, WorkloadFactory factory);
  ~RtClientPool();

  RtClientPool(const RtClientPool&) = delete;
  RtClientPool& operator=(const RtClientPool&) = delete;

  /// Launches one thread per service client slot; every session submits
  /// its first acquire immediately.
  void Start();

  /// Timed mode: sessions finish their in-flight transaction and stop.
  void StopIssuing() { stop_.store(true, std::memory_order_release); }

  /// Waits until every session is idle and the client threads have exited.
  /// (Fixed-count mode needs no StopIssuing first.)
  void Join();

  /// Toggles the measurement window (warm-up exclusion).
  void SetRecording(bool on) {
    recording_.store(on, std::memory_order_release);
  }

  /// Merged per-thread metrics. Call after Join().
  RunMetrics Collect() const;

  /// Committed transactions across all sessions (unconditional, not gated
  /// on recording). Call after Join().
  std::uint64_t TotalCommits() const;

  /// Policy aborts (die + wound) across all sessions. Call after Join().
  std::uint64_t TotalAborts() const;
  /// Held-lock revocations (wound-wait) across all sessions.
  std::uint64_t TotalWounds() const;
  /// Sum of committed transactions' lock-set sizes. Call after Join().
  std::uint64_t TotalCommittedLockGrants() const;

  int num_sessions() const {
    return service_.num_clients() * config_.sessions_per_client;
  }

  /// Sharded client-side telemetry (one shard per client thread); the
  /// latency histograms cover the whole run, not just the measurement
  /// window. Empty (no instruments) when config.telemetry is off.
  TelemetryDomain& telemetry_domain() { return domain_; }
  const TelemetryDomain& telemetry_domain() const { return domain_; }

  /// Folds the domain into `registry` as deltas (commits, latency
  /// histogram summaries). Safe to call repeatedly — the live poller does
  /// every tick; the harness does once more after Join() so fixed-count
  /// runs (no poller) publish too.
  void PublishTelemetry(MetricsRegistry& registry) {
    domain_.PublishTo(registry);
  }

 private:
  struct Session {
    Rng rng{1};
    std::unique_ptr<WorkloadGenerator> workload;
    std::uint32_t engine_id = 0;  ///< Global session index + 1.
    TxnSpec current;
    TxnId txn = kInvalidTxn;
    std::uint64_t counter = 0;
    std::size_t next_lock = 0;
    SimTime txn_start = 0;
    SimTime lock_issue = 0;
    std::uint64_t committed = 0;
    bool active = false;
    /// Policy abort (die or wound) tore the transaction down; the session
    /// resumes — same spec, fresh txn id — once substrate time reaches
    /// retry_at. Completions for the aborted txn id are dropped meanwhile.
    bool backoff = false;
    SimTime retry_at = 0;
  };

  struct ClientThread {
    int index = 0;
    int first_session = 0;  ///< Global index of sessions[0].
    std::vector<Session> sessions;
    /// Per-core submit staging (batch_submit mode): requests group here by
    /// target core and flush once per poll-loop iteration.
    std::vector<std::vector<RtRequest>> staged;
    RunMetrics metrics;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;  ///< Policy aborts (die + wound).
    std::uint64_t wounds = 0;  ///< Of those, held-lock revocations.
    /// Sum of committed transactions' lock-set sizes (timing-independent
    /// on fixed-count runs; the cross-backend tests compare it exactly).
    std::uint64_t committed_lock_grants = 0;
    std::thread thread;
  };

  void RunClient(ClientThread& ct);
  void BeginTxn(ClientThread& ct, Session& s);
  void SubmitAcquire(ClientThread& ct, Session& s);
  /// Routes a request to the wire: staged per core (batch_submit) or a
  /// direct Submit.
  void EnqueueRequest(ClientThread& ct, const RtRequest& rt);
  /// Flushes every nonempty per-core staging buffer with SubmitBatch.
  void FlushStaged(ClientThread& ct);
  /// Returns true when the session went idle (txn budget / stop flag).
  bool OnGrant(ClientThread& ct, const RtCompletion& comp);
  /// Policy abort for a session's current txn: release survivors, cancel
  /// the in-flight acquire if any, enter backoff.
  void OnAbort(ClientThread& ct, Session& s, const RtCompletion& comp);
  /// Restarts sessions whose backoff expired (fresh txn id, same spec);
  /// sessions resumed after StopIssuing go idle and bump `idled` instead.
  /// Returns the number resumed.
  std::size_t ResumeBackoffs(ClientThread& ct, std::size_t& idled);

  RtLockService& service_;
  ExecutionSubstrate& substrate_;
  RtClientConfig config_;
  WorkloadFactory factory_;
  TelemetryDomain domain_;
  TelemetryCounter c_commits_;
  TelemetryHistogram h_lock_latency_;
  TelemetryHistogram h_txn_latency_;
  std::vector<std::unique_ptr<ClientThread>> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> recording_{false};
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace netlock::rt
