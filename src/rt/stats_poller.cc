#include "rt/stats_poller.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/check.h"

#if defined(__unix__) || defined(__APPLE__)
#define NETLOCK_HAVE_UNIX_SOCKETS 1
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define NETLOCK_HAVE_UNIX_SOCKETS 0
#endif

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace netlock::rt {

RtStatsPoller::RtStatsPoller(Options options, MetricsRegistry& registry)
    : options_(options),
      registry_(registry),
      store_(static_cast<SimTime>(options.interval.count())) {
  NETLOCK_CHECK(options_.interval.count() > 0);
}

RtStatsPoller::~RtStatsPoller() { Stop(); }

void RtStatsPoller::AddDomain(TelemetryDomain* domain) {
  NETLOCK_CHECK(!started_);
  NETLOCK_CHECK(domain != nullptr);
  domains_.push_back(domain);
}

void RtStatsPoller::Watch(const std::string& counter_name) {
  NETLOCK_CHECK(!started_);
  store_.Watch(counter_name, registry_.Counter(counter_name));
}

void RtStatsPoller::WatchGauge(const std::string& gauge_name) {
  NETLOCK_CHECK(!started_);
  store_.WatchGauge(gauge_name, registry_.Gauge(gauge_name));
}

void RtStatsPoller::SetSnapshotProvider(SnapshotProvider provider) {
  NETLOCK_CHECK(!started_);
  provider_ = std::move(provider);
}

void RtStatsPoller::Start(SimTime start_time) {
  NETLOCK_CHECK(!started_);
  started_ = true;
  // Publish once before the baseline so the store's first bucket measures
  // growth from Start, not the whole pre-Start history.
  PublishAll();
  store_.Begin(start_time);
  OpenSocket();
  stop_ = false;
  thread_ = std::thread([this]() { ThreadMain(); });
}

void RtStatsPoller::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;  // Already stopped (Stop then destructor).
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final fold so the registry is exact even if the run ended mid-bucket
  // (the partial bucket is dropped from the series, not the totals).
  PublishAll();
  CloseSocket();
}

void RtStatsPoller::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.interval, [this]() { return stop_; })) {
      break;
    }
    lock.unlock();
    PublishAll();
    store_.Tick();
    polls_.fetch_add(1, std::memory_order_release);
    if (listen_fd_ >= 0) {
      ServeClients(provider_ ? provider_() : std::string());
    }
    lock.lock();
  }
}

void RtStatsPoller::PublishAll() {
  for (TelemetryDomain* domain : domains_) domain->PublishTo(registry_);
}

void RtStatsPoller::OpenSocket() {
#if NETLOCK_HAVE_UNIX_SOCKETS
  if (options_.socket_path.empty()) return;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "stats_poller: socket path too long: %s\n",
                 options_.socket_path.c_str());
    return;
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("stats_poller: socket");
    return;
  }
  ::unlink(options_.socket_path.c_str());  // Stale socket from a prior run.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 4) < 0) {
    std::perror("stats_poller: bind/listen");
    ::close(fd);
    return;
  }
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  listen_fd_ = fd;
#endif
}

void RtStatsPoller::ServeClients(const std::string& frame) {
#if NETLOCK_HAVE_UNIX_SOCKETS
  // Accept whoever connected since the last tick.
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    client_fds_.push_back(fd);
  }
  if (frame.empty()) return;
  for (std::size_t i = 0; i < client_fds_.size();) {
    const ssize_t n = ::send(client_fds_[i], frame.data(), frame.size(),
                             MSG_NOSIGNAL);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Stalled reader: skip this frame rather than block the tick.
      ++i;
      continue;
    }
    if (n < 0) {
      ::close(client_fds_[i]);
      client_fds_[i] = client_fds_.back();
      client_fds_.pop_back();
      continue;
    }
    ++i;
  }
#else
  (void)frame;
#endif
}

void RtStatsPoller::CloseSocket() {
#if NETLOCK_HAVE_UNIX_SOCKETS
  for (const int fd : client_fds_) ::close(fd);
  client_fds_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
#endif
}

}  // namespace netlock::rt
