// Traditional centralized server-only lock manager (the "Server-only"
// design point of paper Figure 1, and the "lock server" side of Figure 9).
//
// Clients send lock requests directly to the lock server responsible for
// the lock (hash partitioning); the server CPU both queues and grants, so
// throughput is bounded by cores * per-core rate — the bottleneck NetLock
// exists to remove. Reuses the LockServer substrate in owner-only mode.
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "client/client.h"
#include "server/lock_server.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace netlock {

class ServerOnlyManager {
 public:
  struct SessionDefaults {
    SimTime retry_timeout = 5 * kMillisecond;
    int max_retries = 16;
  };

  ServerOnlyManager(Network& net, LockServerConfig server_config,
                    int num_servers);

  /// Retry parameters applied to every subsequently created session (the
  /// harness plumbs its client_retry_timeout here).
  void set_session_defaults(SessionDefaults defaults) {
    session_defaults_ = defaults;
  }

  std::unique_ptr<LockSession> CreateSession(ClientMachine& machine,
                                             TenantId tenant = 0);

  /// Periodic lease cleanup, as any centralized manager runs.
  void StartLeasePolling(SimTime lease, SimTime interval);

  LockServer& server(int i) { return *servers_[i]; }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  NodeId ServerNodeFor(LockId lock) const;

  std::uint64_t Grants() const;

 private:
  Network& net_;
  std::vector<std::unique_ptr<LockServer>> servers_;
  SessionDefaults session_defaults_;
};

/// Session that routes each lock to its home server directly.
class ServerOnlySession : public LockSession {
 public:
  struct Config {
    TenantId tenant = 0;
    SimTime retry_timeout = 5 * kMillisecond;
    int max_retries = 16;
    /// Duplicate-grant filter slots (see NetLockSession::Config).
    std::uint32_t grant_filter_slots = 1024;
  };

  ServerOnlySession(ClientMachine& machine, const ServerOnlyManager& manager,
                    Config config);

  void Acquire(LockId lock, LockMode mode, TxnId txn, Priority priority,
               AcquireCallback cb) override;
  void Release(LockId lock, LockMode mode, TxnId txn) override;
  void Cancel(LockId lock, LockMode mode, TxnId txn) override;
  void set_wound_observer(
      std::function<void(LockId, TxnId)> obs) override {
    wound_observer_ = std::move(obs);
  }
  NodeId node() const override { return node_; }

 private:
  struct Pending {
    LockMode mode;
    AcquireCallback cb;
    int attempts = 0;
    std::uint64_t epoch = 0;
  };

  void OnPacket(const Packet& pkt);
  void SendAcquire(LockId lock, TxnId txn, const Pending& pending);
  void ArmRetry(LockId lock, TxnId txn, std::uint64_t epoch);
  void Invalidate(LockId lock, TxnId txn);
  bool Invalidated(LockId lock, TxnId txn) const;

  ClientMachine& machine_;
  const ServerOnlyManager& manager_;
  Config config_;
  NodeId node_;
  std::map<std::pair<LockId, TxnId>, Pending> pending_;
  std::uint64_t next_epoch_ = 1;
  /// Per-instance release nonce (see NetLockSession::release_nonce_): keys
  /// the server's retransmission-dedup filter.
  std::uint32_t release_nonce_ = 1;
  /// Grant-dedup fingerprints (see NetLockSession::grant_filter_): drops
  /// duplicated grant copies before they re-fire the ghost release.
  std::vector<std::uint64_t> grant_filter_;
  /// Pairs whose entries a cancel/wound already removed server-side; a
  /// racing grant for one must not ghost-release (see NetLockSession).
  std::set<std::pair<LockId, TxnId>> invalidated_;
  std::deque<std::pair<LockId, TxnId>> invalidated_fifo_;
  std::function<void(LockId, TxnId)> wound_observer_;
};

}  // namespace netlock
