#include "baselines/server_only.h"

#include "common/check.h"

namespace netlock {

ServerOnlyManager::ServerOnlyManager(Network& net,
                                     LockServerConfig server_config,
                                     int num_servers)
    : net_(net) {
  NETLOCK_CHECK(num_servers >= 1);
  for (int i = 0; i < num_servers; ++i) {
    servers_.push_back(std::make_unique<LockServer>(net_, server_config));
  }
}

NodeId ServerOnlyManager::ServerNodeFor(LockId lock) const {
  std::uint64_t h = lock;
  h ^= h >> 15;
  h *= 0x2c1b3c6dull;
  h ^= h >> 12;
  return servers_[h % servers_.size()]->node();
}

std::unique_ptr<LockSession> ServerOnlyManager::CreateSession(
    ClientMachine& machine, TenantId tenant) {
  ServerOnlySession::Config config;
  config.tenant = tenant;
  config.retry_timeout = session_defaults_.retry_timeout;
  config.max_retries = session_defaults_.max_retries;
  return std::make_unique<ServerOnlySession>(machine, *this, config);
}

void ServerOnlyManager::StartLeasePolling(SimTime lease, SimTime interval) {
  net_.sim().Schedule(interval, [this, lease, interval]() {
    for (auto& server : servers_) server->ClearExpired(lease);
    StartLeasePolling(lease, interval);
  });
}

std::uint64_t ServerOnlyManager::Grants() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) total += server->stats().grants;
  return total;
}

ServerOnlySession::ServerOnlySession(ClientMachine& machine,
                                     const ServerOnlyManager& manager,
                                     Config config)
    : machine_(machine), manager_(manager), config_(config) {
  grant_filter_.assign(config_.grant_filter_slots, 0);
  node_ = machine_.net().AddNode(
      [this](const Packet& pkt) { OnPacket(pkt); });
}

void ServerOnlySession::Acquire(LockId lock, LockMode mode, TxnId txn,
                                Priority /*priority*/, AcquireCallback cb) {
  const auto key = std::make_pair(lock, txn);
  NETLOCK_CHECK(pending_.find(key) == pending_.end());
  Pending pending;
  pending.mode = mode;
  pending.cb = std::move(cb);
  pending.epoch = next_epoch_++;
  SendAcquire(lock, txn, pending);
  const std::uint64_t epoch = pending.epoch;
  pending_.emplace(key, std::move(pending));
  ArmRetry(lock, txn, epoch);
}

void ServerOnlySession::Release(LockId lock, LockMode mode, TxnId txn) {
  LockHeader hdr;
  hdr.op = LockOp::kRelease;
  hdr.lock_id = lock;
  hdr.mode = mode;
  hdr.txn_id = txn;
  hdr.client_node = node_;
  hdr.aux = release_nonce_++;  // Per-instance nonce (dedup filter key).
  machine_.Send(
      MakeLockPacket(node_, manager_.ServerNodeFor(lock), hdr));
}

void ServerOnlySession::Cancel(LockId lock, LockMode mode, TxnId txn) {
  pending_.erase(std::make_pair(lock, txn));  // Callback never fires.
  Invalidate(lock, txn);
  LockHeader hdr;
  hdr.op = LockOp::kCancel;
  hdr.lock_id = lock;
  hdr.mode = mode;
  hdr.txn_id = txn;
  hdr.client_node = node_;
  hdr.timestamp = machine_.net().sim().now();
  machine_.Send(MakeLockPacket(node_, manager_.ServerNodeFor(lock), hdr));
}

void ServerOnlySession::Invalidate(LockId lock, TxnId txn) {
  const auto pair = std::make_pair(lock, txn);
  if (!invalidated_.insert(pair).second) return;
  invalidated_fifo_.push_back(pair);
  while (invalidated_fifo_.size() > 1024) {
    invalidated_.erase(invalidated_fifo_.front());
    invalidated_fifo_.pop_front();
  }
}

bool ServerOnlySession::Invalidated(LockId lock, TxnId txn) const {
  return invalidated_.count(std::make_pair(lock, txn)) != 0;
}

void ServerOnlySession::SendAcquire(LockId lock, TxnId txn,
                                    const Pending& pending) {
  LockHeader hdr;
  hdr.op = LockOp::kAcquire;
  hdr.flags = kFlagServerOwned;
  hdr.lock_id = lock;
  hdr.mode = pending.mode;
  hdr.tenant = config_.tenant;
  hdr.txn_id = txn;
  hdr.client_node = node_;
  hdr.timestamp = machine_.net().sim().now();
  machine_.Send(MakeLockPacket(node_, manager_.ServerNodeFor(lock), hdr));
}

void ServerOnlySession::ArmRetry(LockId lock, TxnId txn,
                                 std::uint64_t epoch) {
  machine_.net().sim().Schedule(
      config_.retry_timeout, [this, lock, txn, epoch]() {
        const auto it = pending_.find(std::make_pair(lock, txn));
        if (it == pending_.end() || it->second.epoch != epoch) return;
        Pending& pending = it->second;
        if (pending.attempts >= config_.max_retries) {
          AcquireCallback cb = std::move(pending.cb);
          pending_.erase(it);
          cb(AcquireResult::kTimeout);
          return;
        }
        ++pending.attempts;
        pending.epoch = next_epoch_++;
        SendAcquire(lock, txn, pending);
        ArmRetry(lock, txn, pending.epoch);
      });
}

void ServerOnlySession::OnPacket(const Packet& pkt) {
  const std::optional<LockHeader> hdr = LockHeader::Parse(pkt);
  if (!hdr) return;
  if (hdr->op == LockOp::kAbort) {
    // Deadlock-policy refusal (no-wait/wait-die) or revocation (wound);
    // the queue entry is gone server-side either way.
    const auto it =
        pending_.find(std::make_pair(hdr->lock_id, hdr->txn_id));
    if (it != pending_.end()) {
      Invalidate(hdr->lock_id, hdr->txn_id);
      AcquireCallback cb = std::move(it->second.cb);
      pending_.erase(it);
      cb(AcquireResult::kAborted);
    } else if (static_cast<AbortReason>(hdr->aux) == AbortReason::kWound) {
      // Held lock wounded away: the holder must not release it.
      Invalidate(hdr->lock_id, hdr->txn_id);
      if (wound_observer_) wound_observer_(hdr->lock_id, hdr->txn_id);
    }
    return;
  }
  if (hdr->op != LockOp::kGrant) return;
  if (!grant_filter_.empty()) {
    // Drop network-duplicated grant copies so the ghost release below
    // fires once per queue entry (see NetLockSession::OnPacket).
    const std::uint64_t fp = GrantFingerprint(*hdr, pkt.src);
    std::uint64_t& reg = grant_filter_[static_cast<std::size_t>(
        fp % grant_filter_.size())];
    if (reg == fp) return;
    reg = fp;  // Collisions just evict: the filter is best-effort.
  }
  const auto it = pending_.find(std::make_pair(hdr->lock_id, hdr->txn_id));
  if (it == pending_.end()) {
    // A grant racing a cancel/wound: the entry is already removed, so a
    // ghost release would blind-pop some other waiter's entry. Drop it.
    if (Invalidated(hdr->lock_id, hdr->txn_id)) return;
    // Unsolicited grant (duplicate/late): release so the queue slot is
    // reclaimed immediately rather than by lease expiry.
    Release(hdr->lock_id, hdr->mode, hdr->txn_id);
    return;
  }
  AcquireCallback cb = std::move(it->second.cb);
  pending_.erase(it);
  cb(AcquireResult::kGranted);
}

}  // namespace netlock
