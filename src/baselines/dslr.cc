#include "baselines/dslr.h"

#include "common/check.h"

namespace netlock {

DslrManager::DslrManager(Network& net, int num_servers, LockId lock_space,
                         RdmaNicConfig nic_config, DslrConfig config)
    : net_(net), config_(config) {
  NETLOCK_CHECK(num_servers >= 1);
  const std::size_t words_per_server =
      static_cast<std::size_t>(lock_space) / num_servers + 1;
  for (int i = 0; i < num_servers; ++i) {
    nics_.push_back(
        std::make_unique<RdmaNic>(net_, words_per_server, nic_config));
  }
}

NodeId DslrManager::NicNodeFor(LockId lock) const {
  return nics_[lock % nics_.size()]->node();
}

std::uint32_t DslrManager::AddrFor(LockId lock) const {
  return lock / static_cast<LockId>(nics_.size());
}

std::unique_ptr<LockSession> DslrManager::CreateSession(
    ClientMachine& machine) {
  return std::make_unique<DslrSession>(machine, *this);
}

DslrSession::DslrSession(ClientMachine& machine, DslrManager& manager)
    : machine_(machine), manager_(manager), endpoint_(machine.net()) {}

void DslrSession::Acquire(LockId lock, LockMode mode, TxnId /*txn*/,
                          Priority /*priority*/, AcquireCallback cb) {
  StartAcquire(lock, mode, std::move(cb));
}

void DslrSession::StartAcquire(LockId lock, LockMode mode,
                               AcquireCallback cb) {
  // Take a bakery ticket: FAA +1 on the max field of our mode.
  const std::uint64_t delta = mode == LockMode::kExclusive
                                  ? (1ull << 48)
                                  : (1ull << 32);
  auto wait = std::make_shared<Wait>();
  wait->lock = lock;
  wait->mode = mode;
  wait->cb = std::move(cb);
  endpoint_.FetchAndAdd(manager_.NicNodeFor(lock), manager_.AddrFor(lock),
                        delta, [this, wait](std::uint64_t old_word) {
                          OnTicket(wait, old_word);
                        });
}

void DslrSession::OnTicket(std::shared_ptr<Wait> wait,
                           std::uint64_t old_word) {
  const std::uint16_t threshold = manager_.config_.reset_threshold;
  wait->my_x = DslrMaxX(old_word);
  wait->my_s = DslrMaxS(old_word);
  const std::uint16_t my_ticket =
      wait->mode == LockMode::kExclusive ? wait->my_x : wait->my_s;

  if (my_ticket >= threshold || DslrMaxX(old_word) >= threshold ||
      DslrMaxS(old_word) >= threshold) {
    // Counter wraparound region: abandon the ticket. The client that drew
    // exactly the threshold leads the reset; everyone else backs off until
    // the word is re-zeroed, then retries from scratch.
    if (my_ticket == threshold) {
      ++manager_.total_resets_;
      RunResetLeader(wait->lock, threshold);
    }
    WaitForReset(wait);
    return;
  }

  // Bakery grant test against the snapshot the FAA returned.
  const bool granted =
      wait->mode == LockMode::kExclusive
          ? (DslrNowX(old_word) == wait->my_x &&
             DslrNowS(old_word) == wait->my_s)
          : (DslrNowX(old_word) == wait->my_x);
  if (granted) {
    wait->cb(AcquireResult::kGranted);
    return;
  }
  Poll(wait);
}

void DslrSession::Poll(std::shared_ptr<Wait> wait) {
  ++wait->polls;
  if (!wait->detached && wait->polls > manager_.config_.max_polls) {
    // Report failure so the transaction can abort, but keep polling
    // detached: the ticket must be consumed and released when granted or
    // the bakery line behind it stalls forever.
    wait->detached = true;
    AcquireCallback cb = std::move(wait->cb);
    cb(AcquireResult::kTimeout);
  }
  if (wait->detached && wait->polls > manager_.config_.max_detached_polls) {
    return;  // Equivalent of a crashed client; DSLR would need a lease.
  }
  ++manager_.total_polls_;
  endpoint_.Read(
      manager_.NicNodeFor(wait->lock), manager_.AddrFor(wait->lock),
      [this, wait](std::uint64_t word) {
        const bool granted =
            wait->mode == LockMode::kExclusive
                ? (DslrNowX(word) == wait->my_x &&
                   DslrNowS(word) == wait->my_s)
                : (DslrNowX(word) == wait->my_x);
        if (granted) {
          if (wait->detached) {
            Release(wait->lock, wait->mode, 0);  // Consume and free.
          } else {
            wait->cb(AcquireResult::kGranted);
          }
          return;
        }
        // Proportional waiting: sleep by our distance in the queue.
        const std::uint32_t dist_x = static_cast<std::uint16_t>(
            wait->my_x - DslrNowX(word));
        const std::uint32_t dist_s =
            wait->mode == LockMode::kExclusive
                ? static_cast<std::uint16_t>(wait->my_s - DslrNowS(word))
                : 0;
        const std::uint64_t distance = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(dist_x) + dist_s);
        const SimTime delay =
            std::max<SimTime>(manager_.config_.base_poll,
                              distance * manager_.config_.per_hold_estimate);
        machine_.net().sim().Schedule(delay, [this, wait]() { Poll(wait); });
      });
}

void DslrSession::WaitForReset(std::shared_ptr<Wait> wait) {
  machine_.net().sim().Schedule(
      manager_.config_.reset_backoff, [this, wait]() {
        endpoint_.Read(
            manager_.NicNodeFor(wait->lock), manager_.AddrFor(wait->lock),
            [this, wait](std::uint64_t word) {
              if (DslrMaxX(word) >= manager_.config_.reset_threshold ||
                  DslrMaxS(word) >= manager_.config_.reset_threshold) {
                WaitForReset(wait);  // Reset still in progress.
                return;
              }
              StartAcquire(wait->lock, wait->mode, std::move(wait->cb));
            });
      });
}

void DslrSession::RunResetLeader(LockId lock, std::uint16_t threshold) {
  // Wait until every ticket issued before the threshold has been served
  // (now_x == threshold and now_s has caught up with max_s as of our last
  // observation), then CAS the word to zero. Tickets drawn past the
  // threshold were abandoned and never advance the now fields.
  endpoint_.Read(
      manager_.NicNodeFor(lock), manager_.AddrFor(lock),
      [this, lock, threshold](std::uint64_t word) {
        if (DslrMaxX(word) < threshold && DslrMaxS(word) < threshold) {
          return;  // Another leader already reset the word.
        }
        const bool drained = DslrNowX(word) == threshold &&
                             DslrNowS(word) == DslrMaxS(word);
        if (!drained) {
          machine_.net().sim().Schedule(
              manager_.config_.base_poll,
              [this, lock, threshold]() {
                RunResetLeader(lock, threshold);
              });
          return;
        }
        endpoint_.CompareAndSwap(
            manager_.NicNodeFor(lock), manager_.AddrFor(lock), word, 0,
            [this, lock, threshold, word](std::uint64_t observed) {
              if (observed == word) return;  // Swap took effect: reset done.
              // CAS lost a race with a concurrent FAA: re-observe, unless
              // another leader already re-zeroed the word.
              if (DslrMaxX(observed) < threshold &&
                  DslrMaxS(observed) < threshold) {
                return;
              }
              RunResetLeader(lock, threshold);
            });
      });
}

void DslrSession::Release(LockId lock, LockMode mode, TxnId /*txn*/) {
  // Advance the now counter of our mode.
  const std::uint64_t delta =
      mode == LockMode::kExclusive ? (1ull << 16) : 1ull;
  endpoint_.FetchAndAdd(manager_.NicNodeFor(lock), manager_.AddrFor(lock),
                        delta, [](std::uint64_t) {});
}

}  // namespace netlock
