#include "baselines/netchain.h"

#include <algorithm>

#include "common/check.h"
#include "net/lock_wire.h"

namespace netlock {

NetChainSwitch::NetChainSwitch(Network& net, NetChainConfig config)
    : net_(net), config_(config), pipeline_(config.num_stages) {
  node_ = net_.AddNode([this](const Packet& pkt) { OnPacket(pkt); });
  cells_ = std::make_unique<RegisterArray<std::uint64_t>>(
      pipeline_, /*stage=*/1, config_.num_cells, 0);
}

std::uint32_t NetChainSwitch::CellFor(LockId lock) const {
  std::uint64_t h = lock;
  h ^= h >> 17;
  h *= 0xed5ad4bbull;
  h ^= h >> 11;
  return static_cast<std::uint32_t>(h % config_.num_cells);
}

void NetChainSwitch::OnPacket(const Packet& pkt) {
  const std::optional<LockHeader> hdr = LockHeader::Parse(pkt);
  if (!hdr) return;
  PacketPass pass = pipeline_.BeginPass();
  const std::uint32_t cell = CellFor(hdr->lock_id);
  if (hdr->op == LockOp::kAcquire) {
    // Write-if-empty: one register RMW, as in NetChain's insert path.
    const bool acquired = cells_->ReadModifyWrite(
        pass, cell, [&](std::uint64_t& owner) {
          if (owner == hdr->txn_id) return true;  // Re-entrant: two lock ids
                                                  // coarsened onto one cell.
          if (owner != 0) return false;
          owner = hdr->txn_id;
          return true;
        });
    LockHeader reply = *hdr;
    reply.op = acquired ? LockOp::kGrant : LockOp::kReject;
    reply.aux = static_cast<std::uint32_t>(
        acquired ? AcquireResult::kGranted : AcquireResult::kRejected);
    if (acquired) {
      ++stats_.grants;
    } else {
      ++stats_.busy_replies;
    }
    net_.Send(MakeLockPacket(node_, hdr->client_node, reply));
    return;
  }
  if (hdr->op == LockOp::kRelease) {
    cells_->ReadModifyWrite(pass, cell, [&](std::uint64_t& owner) {
      if (owner == hdr->txn_id) owner = 0;  // Guarded delete.
      return 0;
    });
    ++stats_.releases;
  }
}

NetChainSession::NetChainSession(ClientMachine& machine, NetChainSwitch& kv,
                                 std::uint64_t seed)
    : machine_(machine), kv_(kv), rng_(seed) {
  node_ = machine_.net().AddNode(
      [this](const Packet& pkt) { OnPacket(pkt); });
}

SimTime NetChainSession::Backoff(std::uint32_t attempt) {
  const SimTime ceiling =
      std::min<SimTime>(kv_.config().backoff_cap,
                        kv_.config().backoff_base
                            << std::min<std::uint32_t>(attempt, 8));
  return 1 + rng_.NextBounded(ceiling);
}

void NetChainSession::Acquire(LockId lock, LockMode /*mode*/, TxnId txn,
                              Priority /*priority*/, AcquireCallback cb) {
  // Shared locks are degraded to exclusive (paper Section 6.1): NetChain's
  // KV cells cannot represent multiple holders.
  const auto key = std::make_pair(lock, txn);
  NETLOCK_CHECK(pending_.find(key) == pending_.end());
  Pending pending;
  pending.cb = std::move(cb);
  pending_.emplace(key, std::move(pending));
  SendAcquire(lock, txn);
}

void NetChainSession::SendAcquire(LockId lock, TxnId txn) {
  LockHeader hdr;
  hdr.op = LockOp::kAcquire;
  hdr.mode = LockMode::kExclusive;
  hdr.lock_id = lock;
  hdr.txn_id = txn;
  hdr.client_node = node_;
  hdr.timestamp = machine_.net().sim().now();
  machine_.Send(MakeLockPacket(node_, kv_.node(), hdr));
}

void NetChainSession::Release(LockId lock, LockMode /*mode*/, TxnId txn) {
  LockHeader hdr;
  hdr.op = LockOp::kRelease;
  hdr.mode = LockMode::kExclusive;
  hdr.lock_id = lock;
  hdr.txn_id = txn;
  hdr.client_node = node_;
  machine_.Send(MakeLockPacket(node_, kv_.node(), hdr));
}

void NetChainSession::OnPacket(const Packet& pkt) {
  const std::optional<LockHeader> hdr = LockHeader::Parse(pkt);
  if (!hdr) return;
  const auto it = pending_.find(std::make_pair(hdr->lock_id, hdr->txn_id));
  if (it == pending_.end()) {
    if (hdr->op == LockOp::kGrant) {
      // Late grant after we gave up: free the cell immediately.
      Release(hdr->lock_id, LockMode::kExclusive, hdr->txn_id);
    }
    return;
  }
  if (hdr->op == LockOp::kGrant) {
    AcquireCallback cb = std::move(it->second.cb);
    pending_.erase(it);
    cb(AcquireResult::kGranted);
    return;
  }
  if (hdr->op != LockOp::kReject) return;
  // Busy: blind client-side retry with backoff.
  Pending& pending = it->second;
  if (++pending.attempts > kv_.config().max_attempts) {
    AcquireCallback cb = std::move(pending.cb);
    pending_.erase(it);
    cb(AcquireResult::kTimeout);
    return;
  }
  ++retries_;
  const LockId lock = hdr->lock_id;
  const TxnId txn = hdr->txn_id;
  machine_.net().sim().Schedule(Backoff(pending.attempts),
                                [this, lock, txn]() {
                                  if (pending_.count({lock, txn}) == 0) {
                                    return;
                                  }
                                  SendAcquire(lock, txn);
                                });
}

}  // namespace netlock
