#include "baselines/drtm.h"

#include <algorithm>

#include "common/check.h"

namespace netlock {

DrtmManager::DrtmManager(Network& net, int num_servers, LockId lock_space,
                         RdmaNicConfig nic_config, DrtmConfig config)
    : net_(net), config_(config) {
  NETLOCK_CHECK(num_servers >= 1);
  const std::size_t words_per_server =
      static_cast<std::size_t>(lock_space) / num_servers + 1;
  for (int i = 0; i < num_servers; ++i) {
    nics_.push_back(
        std::make_unique<RdmaNic>(net_, words_per_server, nic_config));
  }
}

NodeId DrtmManager::NicNodeFor(LockId lock) const {
  return nics_[lock % nics_.size()]->node();
}

std::uint32_t DrtmManager::AddrFor(LockId lock) const {
  return lock / static_cast<LockId>(nics_.size());
}

std::unique_ptr<LockSession> DrtmManager::CreateSession(
    ClientMachine& machine) {
  return std::make_unique<DrtmSession>(machine, *this, next_owner_id_++);
}

DrtmSession::DrtmSession(ClientMachine& machine, DrtmManager& manager,
                         std::uint32_t owner_id)
    : machine_(machine),
      manager_(manager),
      endpoint_(machine.net()),
      owner_id_(owner_id),
      rng_(0x5eedull * owner_id + 17) {}

SimTime DrtmSession::Backoff(std::uint32_t attempt) {
  // Exponential with full jitter, capped.
  const SimTime ceiling = std::min<SimTime>(
      manager_.config_.backoff_cap,
      manager_.config_.backoff_base
          << std::min<std::uint32_t>(attempt, 10));
  return 1 + rng_.NextBounded(ceiling);
}

void DrtmSession::Acquire(LockId lock, LockMode mode, TxnId /*txn*/,
                          Priority /*priority*/, AcquireCallback cb) {
  if (mode == LockMode::kExclusive) {
    TryExclusive(lock, 0, std::move(cb));
  } else {
    TryShared(lock, 0, std::move(cb));
  }
}

void DrtmSession::TryExclusive(LockId lock, std::uint32_t attempt,
                               AcquireCallback cb) {
  if (attempt > manager_.config_.max_attempts) {
    cb(AcquireResult::kTimeout);
    return;
  }
  const std::uint64_t mine = static_cast<std::uint64_t>(owner_id_) << 32;
  endpoint_.CompareAndSwap(
      manager_.NicNodeFor(lock), manager_.AddrFor(lock), /*compare=*/0,
      /*swap=*/mine,
      [this, lock, attempt, cb = std::move(cb)](std::uint64_t old) mutable {
        if (old == 0) {
          cb(AcquireResult::kGranted);
          return;
        }
        // Held (by a writer or readers): blind fail-and-retry.
        ++manager_.total_retries_;
        machine_.net().sim().Schedule(
            Backoff(attempt), [this, lock, attempt, cb = std::move(cb)]() mutable {
              TryExclusive(lock, attempt + 1, std::move(cb));
            });
      });
}

void DrtmSession::TryShared(LockId lock, std::uint32_t attempt,
                            AcquireCallback cb) {
  if (attempt > manager_.config_.max_attempts) {
    cb(AcquireResult::kTimeout);
    return;
  }
  endpoint_.FetchAndAdd(
      manager_.NicNodeFor(lock), manager_.AddrFor(lock), /*delta=*/1,
      [this, lock, attempt, cb = std::move(cb)](std::uint64_t old) mutable {
        if ((old >> 32) == 0) {
          cb(AcquireResult::kGranted);  // No writer: we are in.
          return;
        }
        // A writer holds the lock: undo our increment and retry.
        ++manager_.total_retries_;
        endpoint_.FetchAndAdd(manager_.NicNodeFor(lock),
                              manager_.AddrFor(lock),
                              /*delta=*/~0ull,  // -1 on the count field.
                              [](std::uint64_t) {});
        machine_.net().sim().Schedule(
            Backoff(attempt), [this, lock, attempt, cb = std::move(cb)]() mutable {
              TryShared(lock, attempt + 1, std::move(cb));
            });
      });
}

void DrtmSession::Release(LockId lock, LockMode mode, TxnId /*txn*/) {
  if (mode == LockMode::kExclusive) {
    // Subtract our owner id from the owner field; FAA keeps concurrent
    // reader-count arithmetic intact (a plain WRITE could erase it).
    const std::uint64_t delta =
        (~(static_cast<std::uint64_t>(owner_id_)) + 1) << 32;
    endpoint_.FetchAndAdd(manager_.NicNodeFor(lock), manager_.AddrFor(lock),
                          delta, [](std::uint64_t) {});
  } else {
    endpoint_.FetchAndAdd(manager_.NicNodeFor(lock), manager_.AddrFor(lock),
                          ~0ull, [](std::uint64_t) {});
  }
}

}  // namespace netlock
