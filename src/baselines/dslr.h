// DSLR baseline (Yoon, Chowdhury, Mozafari — SIGMOD 2018): decentralized
// lock management with RDMA, the paper's primary comparison point.
//
// DSLR adapts Lamport's bakery algorithm to a single 64-bit lock word per
// lock, updated with one-sided RDMA fetch-and-add so the lock server's CPU
// is never involved:
//
//   word = [ max_x (63:48) | max_s (47:32) | now_x (31:16) | now_s (15:0) ]
//
// Acquire: FAA on the max field of your mode takes a bakery ticket and the
// returned snapshot tells you whether you already hold the lock (exclusive:
// now_x == your max_x and now_s == your max_s; shared: now_x == your
// max_x). Otherwise you poll with RDMA READs, waiting proportionally to
// your queue distance. Release: FAA on the now field of your mode. This
// gives FCFS and starvation freedom — but every wait costs extra round
// trips and every op costs a NIC atomic, which is what NetLock beats.
//
// The 16-bit tickets wrap: when a FAA returns max >= kResetThreshold the
// ticket is abandoned; the client that drew exactly the threshold becomes
// the reset leader, waits for every earlier ticket to be served, and CASes
// the word back to zero (DSLR Section 4.4's counter-reset protocol).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "client/client.h"
#include "rdma/rdma.h"
#include "sim/network.h"

namespace netlock {

struct DslrConfig {
  /// Ticket value at which the reset protocol engages.
  std::uint16_t reset_threshold = 0xFF00;
  /// Base interval between polling READs.
  SimTime base_poll = 2 * kMicrosecond;
  /// Expected per-holder service time used to scale the poll interval by
  /// queue distance (DSLR's proportional waiting).
  SimTime per_hold_estimate = 8 * kMicrosecond;
  /// Backoff while waiting out a counter reset.
  SimTime reset_backoff = 20 * kMicrosecond;
  /// Report kTimeout to the caller after this many polls (so deadlocked
  /// transactions can abort), but keep polling detached: a bakery ticket
  /// must still be consumed and released when its turn comes, or every
  /// ticket behind it waits forever. DSLR proper uses leases for this.
  std::uint32_t max_polls = 512;
  /// Hard cap on detached polling (gives up entirely; the line stalls —
  /// the no-lease equivalent of a crashed client).
  std::uint32_t max_detached_polls = 1u << 16;
};

class DslrManager {
 public:
  /// One RDMA NIC per lock server; lock l lives on server l % n at word
  /// l / n.
  DslrManager(Network& net, int num_servers, LockId lock_space,
              RdmaNicConfig nic_config = RdmaNicConfig{},
              DslrConfig config = DslrConfig{});

  std::unique_ptr<LockSession> CreateSession(ClientMachine& machine);

  RdmaNic& nic(int i) { return *nics_[i]; }
  int num_servers() const { return static_cast<int>(nics_.size()); }
  const DslrConfig& config() const { return config_; }

  NodeId NicNodeFor(LockId lock) const;
  std::uint32_t AddrFor(LockId lock) const;

  /// Aggregate client-side retries/polls across sessions (for reporting).
  std::uint64_t total_polls() const { return total_polls_; }
  std::uint64_t total_resets() const { return total_resets_; }

 private:
  friend class DslrSession;

  Network& net_;
  DslrConfig config_;
  std::vector<std::unique_ptr<RdmaNic>> nics_;
  std::uint64_t total_polls_ = 0;
  std::uint64_t total_resets_ = 0;
};

class DslrSession : public LockSession {
 public:
  DslrSession(ClientMachine& machine, DslrManager& manager);

  void Acquire(LockId lock, LockMode mode, TxnId txn, Priority priority,
               AcquireCallback cb) override;
  void Release(LockId lock, LockMode mode, TxnId txn) override;
  NodeId node() const override { return endpoint_.node(); }

 private:
  struct Wait {
    LockId lock;
    LockMode mode;
    std::uint16_t my_x = 0;  ///< max_x snapshot (our ticket for X).
    std::uint16_t my_s = 0;  ///< max_s snapshot.
    std::uint32_t polls = 0;
    bool detached = false;   ///< Caller gave up; consume-and-release.
    AcquireCallback cb;
  };

  void StartAcquire(LockId lock, LockMode mode, AcquireCallback cb);
  void OnTicket(std::shared_ptr<Wait> wait, std::uint64_t old_word);
  void Poll(std::shared_ptr<Wait> wait);
  void WaitForReset(std::shared_ptr<Wait> wait);
  void RunResetLeader(LockId lock, std::uint16_t threshold);

  ClientMachine& machine_;
  DslrManager& manager_;
  RdmaEndpoint endpoint_;
};

// Field helpers (exposed for tests).
constexpr std::uint64_t DslrPack(std::uint16_t max_x, std::uint16_t max_s,
                                 std::uint16_t now_x, std::uint16_t now_s) {
  return (static_cast<std::uint64_t>(max_x) << 48) |
         (static_cast<std::uint64_t>(max_s) << 32) |
         (static_cast<std::uint64_t>(now_x) << 16) | now_s;
}
constexpr std::uint16_t DslrMaxX(std::uint64_t w) {
  return static_cast<std::uint16_t>(w >> 48);
}
constexpr std::uint16_t DslrMaxS(std::uint64_t w) {
  return static_cast<std::uint16_t>(w >> 32);
}
constexpr std::uint16_t DslrNowX(std::uint64_t w) {
  return static_cast<std::uint16_t>(w >> 16);
}
constexpr std::uint16_t DslrNowS(std::uint64_t w) {
  return static_cast<std::uint16_t>(w);
}

}  // namespace netlock
