// NetChain-style baseline (Jin et al., NSDI 2018): locks as entries in an
// in-switch key-value store.
//
// NetChain is "not a fully functional lock manager" (paper Section 6.1): it
// supports only exclusive locks (shared requests are degraded to exclusive)
// and resolves contention by client-side retry instead of queuing. Each
// lock maps to one register cell holding the owner transaction id (0 =
// free); an acquire is a write-if-empty, a release is a guarded delete, and
// a busy reply sends the client into blind retry with backoff.
//
// Because NetChain stores whole items (not queue slots), it must fit every
// lock in switch memory; the paper "adapts the lock granularity based on
// the switch memory size and the number of locks", which we reproduce by
// hashing lock ids onto the available cells — coarser granularity means
// false conflicts, exactly the cost the paper describes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "client/client.h"
#include "common/random.h"
#include "sim/network.h"
#include "switchsim/pipeline.h"

namespace netlock {

struct NetChainConfig {
  /// Register cells available for locks (each holds one owner id).
  std::uint32_t num_cells = 100'000;
  int num_stages = 12;
  SimTime backoff_base = 4 * kMicrosecond;
  SimTime backoff_cap = 256 * kMicrosecond;
  /// Retry budget before reporting failure to the caller. Blind retry
  /// cannot detect deadlock (two transactions each holding a cell the
  /// other wants retry forever), so clients must abort: the transaction
  /// layer then releases its cells and restarts.
  std::uint32_t max_attempts = 512;
};

/// The in-switch KV lock service.
class NetChainSwitch {
 public:
  NetChainSwitch(Network& net, NetChainConfig config = NetChainConfig{});

  NodeId node() const { return node_; }
  const NetChainConfig& config() const { return config_; }

  /// Coarse-granularity mapping of a lock id onto a cell.
  std::uint32_t CellFor(LockId lock) const;

  struct Stats {
    std::uint64_t grants = 0;
    std::uint64_t busy_replies = 0;
    std::uint64_t releases = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void OnPacket(const Packet& pkt);

  Network& net_;
  NetChainConfig config_;
  NodeId node_;
  Pipeline pipeline_;
  std::unique_ptr<RegisterArray<std::uint64_t>> cells_;
  Stats stats_;
};

class NetChainSession : public LockSession {
 public:
  NetChainSession(ClientMachine& machine, NetChainSwitch& kv,
                  std::uint64_t seed);

  void Acquire(LockId lock, LockMode mode, TxnId txn, Priority priority,
               AcquireCallback cb) override;
  void Release(LockId lock, LockMode mode, TxnId txn) override;
  NodeId node() const override { return node_; }

  /// Locks conflict at cell granularity (coarsened locking): expose it so
  /// transactions order/deduplicate by cell.
  LockId ConflictUnit(LockId lock) const override {
    return kv_.CellFor(lock);
  }

  std::uint64_t retries() const { return retries_; }

 private:
  struct Pending {
    std::uint32_t attempts = 0;
    AcquireCallback cb;
  };

  void OnPacket(const Packet& pkt);
  void SendAcquire(LockId lock, TxnId txn);
  SimTime Backoff(std::uint32_t attempt);

  ClientMachine& machine_;
  NetChainSwitch& kv_;
  NodeId node_;
  Rng rng_;
  std::map<std::pair<LockId, TxnId>, Pending> pending_;
  std::uint64_t retries_ = 0;
};

}  // namespace netlock
