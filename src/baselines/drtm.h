// DrTM-style baseline (Wei et al., SOSP 2015): RDMA CAS locks with blind
// fail-and-retry, the paper's second decentralized comparison point.
//
// Each lock is a 64-bit word at the lock server's NIC:
//
//     word = [ exclusive owner (63:32) | shared count (31:0) ]
//
// Exclusive acquire: CAS(0 -> owner<<32); any reader or writer makes the
// CAS fail and the client retries blind after an exponential backoff —
// exactly the behaviour that collapses under contention in Figures 10-11.
// Shared acquire: FAA(+1) on the reader count; if the returned word shows a
// writer, roll back with FAA(-1) and retry. Releases use FAA so concurrent
// reader arithmetic is never lost.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "client/client.h"
#include "common/random.h"
#include "rdma/rdma.h"
#include "sim/network.h"

namespace netlock {

struct DrtmConfig {
  SimTime backoff_base = 4 * kMicrosecond;
  SimTime backoff_cap = 512 * kMicrosecond;
  /// CAS-retry budget before reporting failure: fail-and-retry cannot
  /// detect deadlock, so the transaction layer must abort and release.
  std::uint32_t max_attempts = 512;
};

class DrtmManager {
 public:
  DrtmManager(Network& net, int num_servers, LockId lock_space,
              RdmaNicConfig nic_config = RdmaNicConfig{},
              DrtmConfig config = DrtmConfig{});

  std::unique_ptr<LockSession> CreateSession(ClientMachine& machine);

  NodeId NicNodeFor(LockId lock) const;
  std::uint32_t AddrFor(LockId lock) const;
  const DrtmConfig& config() const { return config_; }

  RdmaNic& nic(int i) { return *nics_[i]; }
  int num_servers() const { return static_cast<int>(nics_.size()); }

  std::uint64_t total_retries() const { return total_retries_; }

 private:
  friend class DrtmSession;

  Network& net_;
  DrtmConfig config_;
  std::vector<std::unique_ptr<RdmaNic>> nics_;
  std::uint64_t total_retries_ = 0;
  std::uint32_t next_owner_id_ = 1;
};

class DrtmSession : public LockSession {
 public:
  DrtmSession(ClientMachine& machine, DrtmManager& manager,
              std::uint32_t owner_id);

  void Acquire(LockId lock, LockMode mode, TxnId txn, Priority priority,
               AcquireCallback cb) override;
  void Release(LockId lock, LockMode mode, TxnId txn) override;
  NodeId node() const override { return endpoint_.node(); }

 private:
  void TryExclusive(LockId lock, std::uint32_t attempt, AcquireCallback cb);
  void TryShared(LockId lock, std::uint32_t attempt, AcquireCallback cb);
  SimTime Backoff(std::uint32_t attempt);

  ClientMachine& machine_;
  DrtmManager& manager_;
  RdmaEndpoint endpoint_;
  std::uint32_t owner_id_;
  Rng rng_;
};

}  // namespace netlock
