file(REMOVE_RECURSE
  "CMakeFiles/ablation_shared_queue.dir/ablation_shared_queue.cc.o"
  "CMakeFiles/ablation_shared_queue.dir/ablation_shared_queue.cc.o.d"
  "ablation_shared_queue"
  "ablation_shared_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shared_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
