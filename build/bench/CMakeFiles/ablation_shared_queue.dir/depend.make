# Empty dependencies file for ablation_shared_queue.
# This may be replaced when dependencies are built.
