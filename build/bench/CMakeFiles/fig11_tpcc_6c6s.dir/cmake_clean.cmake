file(REMOVE_RECURSE
  "CMakeFiles/fig11_tpcc_6c6s.dir/fig11_tpcc_6c6s.cc.o"
  "CMakeFiles/fig11_tpcc_6c6s.dir/fig11_tpcc_6c6s.cc.o.d"
  "fig11_tpcc_6c6s"
  "fig11_tpcc_6c6s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tpcc_6c6s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
