# Empty compiler generated dependencies file for fig11_tpcc_6c6s.
# This may be replaced when dependencies are built.
