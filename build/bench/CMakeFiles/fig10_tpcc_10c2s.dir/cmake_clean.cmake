file(REMOVE_RECURSE
  "CMakeFiles/fig10_tpcc_10c2s.dir/fig10_tpcc_10c2s.cc.o"
  "CMakeFiles/fig10_tpcc_10c2s.dir/fig10_tpcc_10c2s.cc.o.d"
  "fig10_tpcc_10c2s"
  "fig10_tpcc_10c2s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tpcc_10c2s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
