# Empty dependencies file for fig10_tpcc_10c2s.
# This may be replaced when dependencies are built.
