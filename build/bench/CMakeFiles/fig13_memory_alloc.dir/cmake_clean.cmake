file(REMOVE_RECURSE
  "CMakeFiles/fig13_memory_alloc.dir/fig13_memory_alloc.cc.o"
  "CMakeFiles/fig13_memory_alloc.dir/fig13_memory_alloc.cc.o.d"
  "fig13_memory_alloc"
  "fig13_memory_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_memory_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
