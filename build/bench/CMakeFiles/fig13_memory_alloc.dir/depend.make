# Empty dependencies file for fig13_memory_alloc.
# This may be replaced when dependencies are built.
