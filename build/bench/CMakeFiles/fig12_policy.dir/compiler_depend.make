# Empty compiler generated dependencies file for fig12_policy.
# This may be replaced when dependencies are built.
