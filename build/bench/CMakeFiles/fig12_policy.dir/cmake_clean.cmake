file(REMOVE_RECURSE
  "CMakeFiles/fig12_policy.dir/fig12_policy.cc.o"
  "CMakeFiles/fig12_policy.dir/fig12_policy.cc.o.d"
  "fig12_policy"
  "fig12_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
