# Empty dependencies file for fig08_micro.
# This may be replaced when dependencies are built.
