file(REMOVE_RECURSE
  "CMakeFiles/fig08_micro.dir/fig08_micro.cc.o"
  "CMakeFiles/fig08_micro.dir/fig08_micro.cc.o.d"
  "fig08_micro"
  "fig08_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
