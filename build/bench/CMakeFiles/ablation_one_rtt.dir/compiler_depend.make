# Empty compiler generated dependencies file for ablation_one_rtt.
# This may be replaced when dependencies are built.
