file(REMOVE_RECURSE
  "CMakeFiles/ablation_one_rtt.dir/ablation_one_rtt.cc.o"
  "CMakeFiles/ablation_one_rtt.dir/ablation_one_rtt.cc.o.d"
  "ablation_one_rtt"
  "ablation_one_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_one_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
