# Empty dependencies file for fig14_memory_size.
# This may be replaced when dependencies are built.
