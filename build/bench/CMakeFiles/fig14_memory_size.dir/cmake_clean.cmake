file(REMOVE_RECURSE
  "CMakeFiles/fig14_memory_size.dir/fig14_memory_size.cc.o"
  "CMakeFiles/fig14_memory_size.dir/fig14_memory_size.cc.o.d"
  "fig14_memory_size"
  "fig14_memory_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_memory_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
