file(REMOVE_RECURSE
  "CMakeFiles/fig09_switch_vs_server.dir/fig09_switch_vs_server.cc.o"
  "CMakeFiles/fig09_switch_vs_server.dir/fig09_switch_vs_server.cc.o.d"
  "fig09_switch_vs_server"
  "fig09_switch_vs_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_switch_vs_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
