# Empty compiler generated dependencies file for fig09_switch_vs_server.
# This may be replaced when dependencies are built.
