file(REMOVE_RECURSE
  "CMakeFiles/fig15_failure.dir/fig15_failure.cc.o"
  "CMakeFiles/fig15_failure.dir/fig15_failure.cc.o.d"
  "fig15_failure"
  "fig15_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
