# Empty dependencies file for fig15_failure.
# This may be replaced when dependencies are built.
