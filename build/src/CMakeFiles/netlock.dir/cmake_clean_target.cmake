file(REMOVE_RECURSE
  "libnetlock.a"
)
