
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/drtm.cc" "src/CMakeFiles/netlock.dir/baselines/drtm.cc.o" "gcc" "src/CMakeFiles/netlock.dir/baselines/drtm.cc.o.d"
  "/root/repo/src/baselines/dslr.cc" "src/CMakeFiles/netlock.dir/baselines/dslr.cc.o" "gcc" "src/CMakeFiles/netlock.dir/baselines/dslr.cc.o.d"
  "/root/repo/src/baselines/netchain.cc" "src/CMakeFiles/netlock.dir/baselines/netchain.cc.o" "gcc" "src/CMakeFiles/netlock.dir/baselines/netchain.cc.o.d"
  "/root/repo/src/baselines/server_only.cc" "src/CMakeFiles/netlock.dir/baselines/server_only.cc.o" "gcc" "src/CMakeFiles/netlock.dir/baselines/server_only.cc.o.d"
  "/root/repo/src/client/client.cc" "src/CMakeFiles/netlock.dir/client/client.cc.o" "gcc" "src/CMakeFiles/netlock.dir/client/client.cc.o.d"
  "/root/repo/src/client/open_loop.cc" "src/CMakeFiles/netlock.dir/client/open_loop.cc.o" "gcc" "src/CMakeFiles/netlock.dir/client/open_loop.cc.o.d"
  "/root/repo/src/client/txn.cc" "src/CMakeFiles/netlock.dir/client/txn.cc.o" "gcc" "src/CMakeFiles/netlock.dir/client/txn.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/netlock.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/netlock.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/netlock.dir/common/random.cc.o" "gcc" "src/CMakeFiles/netlock.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/netlock.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/netlock.dir/common/stats.cc.o.d"
  "/root/repo/src/core/chain.cc" "src/CMakeFiles/netlock.dir/core/chain.cc.o" "gcc" "src/CMakeFiles/netlock.dir/core/chain.cc.o.d"
  "/root/repo/src/core/control_plane.cc" "src/CMakeFiles/netlock.dir/core/control_plane.cc.o" "gcc" "src/CMakeFiles/netlock.dir/core/control_plane.cc.o.d"
  "/root/repo/src/core/failover.cc" "src/CMakeFiles/netlock.dir/core/failover.cc.o" "gcc" "src/CMakeFiles/netlock.dir/core/failover.cc.o.d"
  "/root/repo/src/core/memory_alloc.cc" "src/CMakeFiles/netlock.dir/core/memory_alloc.cc.o" "gcc" "src/CMakeFiles/netlock.dir/core/memory_alloc.cc.o.d"
  "/root/repo/src/core/netlock.cc" "src/CMakeFiles/netlock.dir/core/netlock.cc.o" "gcc" "src/CMakeFiles/netlock.dir/core/netlock.cc.o.d"
  "/root/repo/src/dataplane/lock_table.cc" "src/CMakeFiles/netlock.dir/dataplane/lock_table.cc.o" "gcc" "src/CMakeFiles/netlock.dir/dataplane/lock_table.cc.o.d"
  "/root/repo/src/dataplane/quota.cc" "src/CMakeFiles/netlock.dir/dataplane/quota.cc.o" "gcc" "src/CMakeFiles/netlock.dir/dataplane/quota.cc.o.d"
  "/root/repo/src/dataplane/shared_queue.cc" "src/CMakeFiles/netlock.dir/dataplane/shared_queue.cc.o" "gcc" "src/CMakeFiles/netlock.dir/dataplane/shared_queue.cc.o.d"
  "/root/repo/src/dataplane/switch_dataplane.cc" "src/CMakeFiles/netlock.dir/dataplane/switch_dataplane.cc.o" "gcc" "src/CMakeFiles/netlock.dir/dataplane/switch_dataplane.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/netlock.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/netlock.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/netlock.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/netlock.dir/harness/report.cc.o.d"
  "/root/repo/src/harness/testbed.cc" "src/CMakeFiles/netlock.dir/harness/testbed.cc.o" "gcc" "src/CMakeFiles/netlock.dir/harness/testbed.cc.o.d"
  "/root/repo/src/net/lock_wire.cc" "src/CMakeFiles/netlock.dir/net/lock_wire.cc.o" "gcc" "src/CMakeFiles/netlock.dir/net/lock_wire.cc.o.d"
  "/root/repo/src/net/wire.cc" "src/CMakeFiles/netlock.dir/net/wire.cc.o" "gcc" "src/CMakeFiles/netlock.dir/net/wire.cc.o.d"
  "/root/repo/src/rdma/rdma.cc" "src/CMakeFiles/netlock.dir/rdma/rdma.cc.o" "gcc" "src/CMakeFiles/netlock.dir/rdma/rdma.cc.o.d"
  "/root/repo/src/server/db_server.cc" "src/CMakeFiles/netlock.dir/server/db_server.cc.o" "gcc" "src/CMakeFiles/netlock.dir/server/db_server.cc.o.d"
  "/root/repo/src/server/lock_server.cc" "src/CMakeFiles/netlock.dir/server/lock_server.cc.o" "gcc" "src/CMakeFiles/netlock.dir/server/lock_server.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/netlock.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/netlock.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/netlock.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/netlock.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/service_queue.cc" "src/CMakeFiles/netlock.dir/sim/service_queue.cc.o" "gcc" "src/CMakeFiles/netlock.dir/sim/service_queue.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/netlock.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/netlock.dir/sim/simulator.cc.o.d"
  "/root/repo/src/switchsim/pipeline.cc" "src/CMakeFiles/netlock.dir/switchsim/pipeline.cc.o" "gcc" "src/CMakeFiles/netlock.dir/switchsim/pipeline.cc.o.d"
  "/root/repo/src/workload/micro.cc" "src/CMakeFiles/netlock.dir/workload/micro.cc.o" "gcc" "src/CMakeFiles/netlock.dir/workload/micro.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/CMakeFiles/netlock.dir/workload/tpcc.cc.o" "gcc" "src/CMakeFiles/netlock.dir/workload/tpcc.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/netlock.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/netlock.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/netlock.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/netlock.dir/workload/workload.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/netlock.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/netlock.dir/workload/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
