# Empty dependencies file for netlock.
# This may be replaced when dependencies are built.
