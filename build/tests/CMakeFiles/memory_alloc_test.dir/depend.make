# Empty dependencies file for memory_alloc_test.
# This may be replaced when dependencies are built.
