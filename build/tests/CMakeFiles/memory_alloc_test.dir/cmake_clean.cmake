file(REMOVE_RECURSE
  "CMakeFiles/memory_alloc_test.dir/memory_alloc_test.cc.o"
  "CMakeFiles/memory_alloc_test.dir/memory_alloc_test.cc.o.d"
  "memory_alloc_test"
  "memory_alloc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
