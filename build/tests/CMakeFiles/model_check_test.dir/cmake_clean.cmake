file(REMOVE_RECURSE
  "CMakeFiles/model_check_test.dir/model_check_test.cc.o"
  "CMakeFiles/model_check_test.dir/model_check_test.cc.o.d"
  "model_check_test"
  "model_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
