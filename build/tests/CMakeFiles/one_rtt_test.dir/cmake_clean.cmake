file(REMOVE_RECURSE
  "CMakeFiles/one_rtt_test.dir/one_rtt_test.cc.o"
  "CMakeFiles/one_rtt_test.dir/one_rtt_test.cc.o.d"
  "one_rtt_test"
  "one_rtt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_rtt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
