# Empty compiler generated dependencies file for one_rtt_test.
# This may be replaced when dependencies are built.
