# Empty dependencies file for netlock_facade_test.
# This may be replaced when dependencies are built.
