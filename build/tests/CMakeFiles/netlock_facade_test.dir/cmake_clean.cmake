file(REMOVE_RECURSE
  "CMakeFiles/netlock_facade_test.dir/netlock_facade_test.cc.o"
  "CMakeFiles/netlock_facade_test.dir/netlock_facade_test.cc.o.d"
  "netlock_facade_test"
  "netlock_facade_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlock_facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
