file(REMOVE_RECURSE
  "CMakeFiles/quota_test.dir/quota_test.cc.o"
  "CMakeFiles/quota_test.dir/quota_test.cc.o.d"
  "quota_test"
  "quota_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quota_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
