file(REMOVE_RECURSE
  "CMakeFiles/session_routing_test.dir/session_routing_test.cc.o"
  "CMakeFiles/session_routing_test.dir/session_routing_test.cc.o.d"
  "session_routing_test"
  "session_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
