# Empty dependencies file for session_routing_test.
# This may be replaced when dependencies are built.
