# Empty dependencies file for dataplane_extended_test.
# This may be replaced when dependencies are built.
