file(REMOVE_RECURSE
  "CMakeFiles/dataplane_extended_test.dir/dataplane_extended_test.cc.o"
  "CMakeFiles/dataplane_extended_test.dir/dataplane_extended_test.cc.o.d"
  "dataplane_extended_test"
  "dataplane_extended_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataplane_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
