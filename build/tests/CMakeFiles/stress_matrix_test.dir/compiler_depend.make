# Empty compiler generated dependencies file for stress_matrix_test.
# This may be replaced when dependencies are built.
