file(REMOVE_RECURSE
  "CMakeFiles/stress_matrix_test.dir/stress_matrix_test.cc.o"
  "CMakeFiles/stress_matrix_test.dir/stress_matrix_test.cc.o.d"
  "stress_matrix_test"
  "stress_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
