# Empty compiler generated dependencies file for open_loop_test.
# This may be replaced when dependencies are built.
