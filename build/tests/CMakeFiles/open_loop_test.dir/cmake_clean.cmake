file(REMOVE_RECURSE
  "CMakeFiles/open_loop_test.dir/open_loop_test.cc.o"
  "CMakeFiles/open_loop_test.dir/open_loop_test.cc.o.d"
  "open_loop_test"
  "open_loop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
