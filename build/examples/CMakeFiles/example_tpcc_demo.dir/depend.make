# Empty dependencies file for example_tpcc_demo.
# This may be replaced when dependencies are built.
