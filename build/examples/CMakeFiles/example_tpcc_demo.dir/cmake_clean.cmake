file(REMOVE_RECURSE
  "CMakeFiles/example_tpcc_demo.dir/tpcc_demo.cpp.o"
  "CMakeFiles/example_tpcc_demo.dir/tpcc_demo.cpp.o.d"
  "example_tpcc_demo"
  "example_tpcc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tpcc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
