file(REMOVE_RECURSE
  "CMakeFiles/example_multi_rack.dir/multi_rack.cpp.o"
  "CMakeFiles/example_multi_rack.dir/multi_rack.cpp.o.d"
  "example_multi_rack"
  "example_multi_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
