# Empty compiler generated dependencies file for example_multi_rack.
# This may be replaced when dependencies are built.
