file(REMOVE_RECURSE
  "CMakeFiles/example_reallocation.dir/reallocation.cpp.o"
  "CMakeFiles/example_reallocation.dir/reallocation.cpp.o.d"
  "example_reallocation"
  "example_reallocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_reallocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
