# Empty compiler generated dependencies file for example_reallocation.
# This may be replaced when dependencies are built.
