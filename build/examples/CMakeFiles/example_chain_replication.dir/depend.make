# Empty dependencies file for example_chain_replication.
# This may be replaced when dependencies are built.
