file(REMOVE_RECURSE
  "CMakeFiles/example_chain_replication.dir/chain_replication.cpp.o"
  "CMakeFiles/example_chain_replication.dir/chain_replication.cpp.o.d"
  "example_chain_replication"
  "example_chain_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_chain_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
