file(REMOVE_RECURSE
  "CMakeFiles/example_backup_switch.dir/backup_switch.cpp.o"
  "CMakeFiles/example_backup_switch.dir/backup_switch.cpp.o.d"
  "example_backup_switch"
  "example_backup_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_backup_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
