# Empty compiler generated dependencies file for example_backup_switch.
# This may be replaced when dependencies are built.
